"""Rescale mechanics: what a scale-out/scale-in *costs* per engine.

ShuffleBench's observation drives this module: at scale the price of
elasticity is not booting machines, it is **redistributing keyed state**
-- and every engine pays it differently.  A rescale here decomposes as

    decide -> provision (boot + warm-up) -> cutover (style pause +
    NIC-bounded state migration) -> catch-up (drain the backlog that
    accumulated while paused)

with the migration leg reusing the exact
:meth:`~repro.recovery.reschedule.ReschedulePolicy.migration_pause_s`
math the self-healing layer uses for crash migrations: moved bytes over
the receivers' NICs at a configured fraction of line rate.

Per-engine **styles** (:class:`RescaleSemantics`, a class attribute on
each engine):

- ``micro-batch`` (Spark): the next micro-batch simply schedules on the
  new cluster -- no style pause, no exposed data.  Nearly free.
- ``savepoint`` (Flink): an aligned savepoint is taken before the
  topology restarts at the new parallelism -- the cutover pays the
  checkpoint sync pause on the *whole* state, plus the migration.
  Exactly-once: nothing is lost or duplicated.
- ``rebalance`` (Storm/Heron): an in-flight rebalance redistributes
  executors without a snapshot; the moved partitions' un-acked window
  contents are simply gone, charged to the at-most-once delivery
  ledger.
- ``repartition`` (Samza): changelog-backed tasks restore on the new
  owners and re-consume since the last commit -- the moved share of the
  commit window is *re-delivered*, charged as at-least-once duplicates.

The :class:`Autoscaler` is the driver-side controller binding a
:class:`~repro.autoscale.policy.ScalingPolicy` to a running engine via
the obs registry's sample hook, so every decision happens on the
simulated sampling clock from registry signals alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.autoscale.policy import AutoscaleSpec, ScalingSignals

#: Next micro-batch plans on the new cluster; no pause, nothing exposed.
STYLE_MICRO_BATCH = "micro-batch"
#: Aligned savepoint + restart at the new parallelism (exactly-once).
STYLE_SAVEPOINT = "savepoint"
#: In-flight executor rebalance; moved un-acked state is dropped.
STYLE_REBALANCE = "rebalance"
#: Changelog repartition; the moved commit window is re-delivered.
STYLE_REPARTITION = "repartition"

RESCALE_STYLES = (
    STYLE_MICRO_BATCH,
    STYLE_SAVEPOINT,
    STYLE_REBALANCE,
    STYLE_REPARTITION,
)


@dataclass(frozen=True)
class RescaleSemantics:
    """How one engine executes a rescale (a class attribute)."""

    style: str = STYLE_SAVEPOINT
    provision_s: float = 15.0
    """Cold-node lead time: container boot + process start.  Skipped
    when the new capacity comes out of the standby pool (hot spares are
    already booted)."""
    warmup_s: float = 2.0
    """Slot/JVM warm-up after boot, paid even by hot spares."""

    def __post_init__(self) -> None:
        if self.style not in RESCALE_STYLES:
            raise ValueError(
                f"style must be one of {RESCALE_STYLES}, got {self.style!r}"
            )
        if self.provision_s < 0 or self.warmup_s < 0:
            raise ValueError(
                "provision_s and warmup_s must be >= 0, got "
                f"({self.provision_s}, {self.warmup_s})"
            )

    def lead_s(self, cold: int) -> float:
        """Decision-to-cutover lead time (``cold`` = nodes not drawn
        from the standby pool)."""
        return (self.provision_s if cold > 0 else 0.0) + self.warmup_s


class Autoscaler:
    """Drives one engine's cluster size from obs-registry signals.

    Installed on the :class:`~repro.obs.registry.MetricsRegistry` sample
    hook: after every snapshot it assembles :class:`ScalingSignals` from
    ``registry.latest(...)`` reads, asks the policy, clamps the verdict
    to ``[min_workers, max_workers]``, and calls the engine's
    ``request_scale_out`` / ``request_scale_in``.  It also integrates
    ``billed_nodes`` over simulated time into ``cost_node_seconds`` --
    the trial's elasticity bill.
    """

    #: Cumulative backpressure-stall instruments, summed into the
    #: policy's stall signal (whichever of them the engine publishes).
    STALL_GAUGES = ("bp.stalled_s", "bp.credit_limited_s", "bp.rate_limited_s")

    def __init__(self, engine: Any, registry: Any, spec: AutoscaleSpec) -> None:
        self.engine = engine
        self.registry = registry
        self.spec = spec
        self.policy = spec.build_policy()
        self.decisions: List[Dict[str, float]] = []
        """Every policy verdict (including clamped/blocked ones)."""
        self.blocked = 0
        """Decisions the bounds or an in-flight rescale suppressed."""
        self.cost_node_seconds = 0.0
        """Integral of billed nodes over simulated time."""
        self._last_sample_s: Optional[float] = None

    def install(self) -> None:
        self.registry.add_sample_hook(self.on_sample)

    # -- the control loop ------------------------------------------------

    def on_sample(self, now: float) -> None:
        engine = self.engine
        if self._last_sample_s is not None:
            self.cost_node_seconds += engine.billed_nodes * (
                now - self._last_sample_s
            )
        self._last_sample_s = now
        if engine.failed:
            return
        decision = self.policy.decide(self._signals(now))
        if decision is None:
            return
        entry: Dict[str, float] = {
            "at_s": now,
            "delta": float(decision.delta),
            "reason": decision.reason,  # type: ignore[dict-item]
            "detect_s": decision.detect_s,
        }
        self.decisions.append(entry)
        target = engine.target_workers
        if decision.delta > 0:
            grant = min(decision.delta, self.spec.max_workers - target)
        else:
            # Idle spares count as shrink headroom even at min_workers:
            # returning one never touches the active cluster.
            headroom = (
                max(0, target - self.spec.min_workers)
                + engine.standbys_available
            )
            grant = -min(-decision.delta, headroom)
        if grant == 0:
            entry["blocked"] = 1.0
            self.blocked += 1
            return
        if grant > 0:
            event = engine.request_scale_out(
                grant, reason=decision.reason, detect_s=decision.detect_s
            )
        else:
            event = engine.request_scale_in(
                -grant, reason=decision.reason, detect_s=decision.detect_s
            )
        if event is None:
            entry["blocked"] = 1.0
            self.blocked += 1

    def finalize(self, end_s: float) -> None:
        """Bill the tail between the last sample and the trial end."""
        if self._last_sample_s is not None and end_s > self._last_sample_s:
            self.cost_node_seconds += self.engine.billed_nodes * (
                end_s - self._last_sample_s
            )
            self._last_sample_s = end_s

    def _signals(self, now: float) -> ScalingSignals:
        latest = self.registry.latest
        stall = float("nan")
        for name in self.STALL_GAUGES:
            value = latest(name)
            if not math.isnan(value):
                stall = value if math.isnan(stall) else stall + value
        workers = latest("engine.active_workers")
        return ScalingSignals(
            now=now,
            queue_delay_s=latest("driver.oldest_wait_s"),
            watermark_lag_s=latest("driver.watermark_lag_s"),
            backpressure_stall_s=stall,
            offered_rate=latest("driver.offered_rate"),
            capacity_events_per_s=latest("engine.capacity_events_per_s"),
            active_workers=1 if math.isnan(workers) else int(workers),
        )

    # -- export ----------------------------------------------------------

    def diagnostics(self) -> Dict[str, float]:
        events = self.engine.rescale_log
        outs = sum(1 for e in events if e["kind"] == "scale-out")
        return {
            "autoscale.events": float(len(events)),
            "autoscale.scale_outs": float(outs),
            "autoscale.scale_ins": float(len(events) - outs),
            "autoscale.decisions": float(len(self.decisions)),
            "autoscale.blocked": float(self.blocked),
            "autoscale.cost_node_seconds": self.cost_node_seconds,
            "autoscale.min_workers": float(self.spec.min_workers),
            "autoscale.max_workers": float(self.spec.max_workers),
        }
