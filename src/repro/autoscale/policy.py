"""Scaling policies: when to add or remove workers.

The paper benchmarks fixed-size clusters; SProBench-style elasticity
asks the next question -- given a diurnal curve or a flash crowd, how
fast does each engine's *policy + rescale mechanics* pipeline restore
sustainable throughput, and what does the spare capacity cost?

Policies are deliberately blind to the simulation internals: a policy
sees only :class:`ScalingSignals`, a snapshot of obs-registry
instruments taken by the :class:`~repro.autoscale.rescale.Autoscaler`
at every registry sample.  Decisions therefore happen on the simulated
sampling clock -- deterministic, replayable, and exactly what a real
autoscaler bolted onto the metrics endpoint would see.

Two built-in policies:

- :class:`ThresholdPolicy` -- reactive rules on queue delay, watermark
  lag, and backpressure stall time, with hysteresis bands (scale-out
  triggers high, scale-in triggers low *and* calm) and a cooldown after
  every decision so the policy cannot flap.
- :class:`TargetUtilizationPolicy` -- PID-style tracking of the
  offered-rate / sustained-capacity ratio toward a target utilization,
  with an error deadband, anti-windup clamping, and the same cooldown.

Both guarantee: consecutive decisions (in particular, opposite-signed
ones) are separated by at least ``cooldown_s`` of simulated time.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

#: Registered policy names (the ``--autoscale`` CLI values).
POLICY_NAMES = ("threshold", "target")


@dataclass(frozen=True)
class AutoscaleSpec:
    """Trial-level autoscaling configuration (picklable, hashable)."""

    policy: str = "threshold"
    """Which policy drives the trial: ``threshold`` or ``target``."""
    min_workers: int = 1
    """Scale-in floor on the total cluster size."""
    max_workers: int = 16
    """Scale-out ceiling on the total cluster size."""
    cooldown_s: float = 20.0
    """Minimum simulated time between two scaling decisions."""
    high_delay_s: float = 4.0
    """Threshold policy: queue-delay / watermark-lag band above which
    the cluster is overloaded."""
    low_utilization: float = 0.4
    """Threshold policy: offered/capacity ratio below which (when calm)
    the cluster is underloaded."""
    target_utilization: float = 0.75
    """Target policy: the offered/capacity ratio the PID tracks."""
    settle_samples: int = 3
    """Consecutive calm samples required before a scale-in fires."""
    step_workers: int = 2
    """Threshold policy: workers added/removed per decision; also the
    per-decision clamp on the target policy's PID output."""

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"policy must be one of {POLICY_NAMES}, got {self.policy!r}"
            )
        if self.min_workers < 1:
            raise ValueError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= "
                f"min_workers ({self.min_workers})"
            )
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.high_delay_s <= 0:
            raise ValueError(
                f"high_delay_s must be > 0, got {self.high_delay_s}"
            )
        if not 0 < self.low_utilization < 1:
            raise ValueError(
                f"low_utilization must be in (0, 1), got {self.low_utilization}"
            )
        if not 0 < self.target_utilization < 1:
            raise ValueError(
                "target_utilization must be in (0, 1), "
                f"got {self.target_utilization}"
            )
        if self.settle_samples < 1:
            raise ValueError(
                f"settle_samples must be >= 1, got {self.settle_samples}"
            )
        if self.step_workers < 1:
            raise ValueError(
                f"step_workers must be >= 1, got {self.step_workers}"
            )

    def build_policy(self) -> "ScalingPolicy":
        """A fresh (stateful) policy instance for one trial."""
        if self.policy == "threshold":
            return ThresholdPolicy(
                high_delay_s=self.high_delay_s,
                low_utilization=self.low_utilization,
                cooldown_s=self.cooldown_s,
                settle_samples=self.settle_samples,
                step_workers=self.step_workers,
            )
        return TargetUtilizationPolicy(
            target=self.target_utilization,
            cooldown_s=self.cooldown_s,
            settle_samples=self.settle_samples,
            max_step=self.step_workers,
            calm_delay_s=self.high_delay_s / 2.0,
        )


@dataclass(frozen=True)
class ScalingSignals:
    """One obs-registry snapshot as seen by a policy.

    Every field is read from registry instruments at sample time; NaN
    means the instrument does not exist (yet) and is treated as "no
    evidence" by the policies.
    """

    now: float
    queue_delay_s: float
    """Oldest wait in the driver queues (``driver.oldest_wait_s``)."""
    watermark_lag_s: float
    """Generation frontier minus source watermark
    (``driver.watermark_lag_s``)."""
    backpressure_stall_s: float
    """Cumulative engine stall/limit seconds (summed ``bp.*`` signals)."""
    offered_rate: float
    """Current total offered rate (``driver.offered_rate``)."""
    capacity_events_per_s: float
    """Engine's current CPU-bound capacity
    (``engine.capacity_events_per_s``)."""
    active_workers: int
    """Workers currently serving (``engine.active_workers``)."""

    @property
    def utilization(self) -> float:
        """Offered/capacity ratio; NaN when either side is unknown."""
        if (
            math.isnan(self.offered_rate)
            or math.isnan(self.capacity_events_per_s)
            or self.capacity_events_per_s <= 0
        ):
            return float("nan")
        return self.offered_rate / self.capacity_events_per_s


@dataclass(frozen=True)
class ScalingDecision:
    """One policy verdict: add (``delta > 0``) or remove workers."""

    delta: int
    reason: str
    detect_s: float
    """Simulated time from the first sample that breached the band to
    this decision -- the "detect" leg of time-to-resustain."""


class ScalingPolicy(ABC):
    """Stateful decision function evaluated once per registry sample."""

    def __init__(self, cooldown_s: float) -> None:
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.cooldown_s = float(cooldown_s)
        self._last_decision_s = -math.inf

    @abstractmethod
    def decide(self, signals: ScalingSignals) -> Optional[ScalingDecision]:
        """Return a decision, or None to hold."""

    # -- shared hysteresis machinery ------------------------------------

    def _in_cooldown(self, now: float) -> bool:
        return now - self._last_decision_s < self.cooldown_s

    def _commit(
        self, now: float, delta: int, reason: str, since: float
    ) -> ScalingDecision:
        self._last_decision_s = now
        detect = 0.0 if math.isnan(since) else max(0.0, now - since)
        return ScalingDecision(delta=delta, reason=reason, detect_s=detect)


class ThresholdPolicy(ScalingPolicy):
    """Reactive bands with hysteresis and cooldown.

    Scale-out: queue delay or watermark lag above ``high_delay_s``, or
    the engine spent more than half the last sample interval stalled by
    backpressure.  Overload reacts on the first breaching sample (a
    flash crowd cannot wait out a settle count) but never inside the
    cooldown window.

    Scale-in: utilization below ``low_utilization`` *and* delay/lag
    inside the calm band (half the high threshold) for
    ``settle_samples`` consecutive samples.  The asymmetric bands plus
    the universal cooldown are the anti-flapping mechanism: an
    oscillation would need the signals to cross both bands *and* out-wait
    the cooldown each way.
    """

    def __init__(
        self,
        *,
        high_delay_s: float = 4.0,
        low_utilization: float = 0.4,
        cooldown_s: float = 20.0,
        settle_samples: int = 3,
        step_workers: int = 2,
        stall_fraction: float = 0.5,
    ) -> None:
        super().__init__(cooldown_s)
        self.high_delay_s = float(high_delay_s)
        self.low_utilization = float(low_utilization)
        self.settle_samples = int(settle_samples)
        self.step_workers = int(step_workers)
        self.stall_fraction = float(stall_fraction)
        self._overload_since = float("nan")
        self._underload_since = float("nan")
        self._underload_streak = 0
        self._prev_stall_s = float("nan")
        self._prev_now = float("nan")

    def decide(self, signals: ScalingSignals) -> Optional[ScalingDecision]:
        now = signals.now
        stalled = self._stalled_recently(signals)
        delay = signals.queue_delay_s
        lag = signals.watermark_lag_s
        hot = (
            (not math.isnan(delay) and delay > self.high_delay_s)
            or (not math.isnan(lag) and lag > self.high_delay_s)
            or stalled
        )
        calm_band = self.high_delay_s / 2.0
        calm = (math.isnan(delay) or delay < calm_band) and (
            math.isnan(lag) or lag < calm_band
        )
        utilization = signals.utilization
        idle = (
            not math.isnan(utilization)
            and utilization < self.low_utilization
            and calm
            and not stalled
        )

        if hot:
            if math.isnan(self._overload_since):
                self._overload_since = now
            self._underload_since = float("nan")
            self._underload_streak = 0
        elif idle:
            if math.isnan(self._underload_since):
                self._underload_since = now
            self._underload_streak += 1
            self._overload_since = float("nan")
        else:
            self._overload_since = float("nan")
            self._underload_since = float("nan")
            self._underload_streak = 0

        if self._in_cooldown(now):
            return None
        if hot:
            reason = "stall" if stalled else "lag"
            decision = self._commit(
                now, self.step_workers, reason, self._overload_since
            )
            self._overload_since = float("nan")
            return decision
        if idle and self._underload_streak >= self.settle_samples:
            decision = self._commit(
                now, -self.step_workers, "idle", self._underload_since
            )
            self._underload_since = float("nan")
            self._underload_streak = 0
            return decision
        return None

    def _stalled_recently(self, signals: ScalingSignals) -> bool:
        """Did backpressure stall more than ``stall_fraction`` of the
        last inter-sample interval?  (The stall signals are cumulative
        seconds, so the delta over the interval is the duty cycle.)"""
        stall = signals.backpressure_stall_s
        prev_stall, prev_now = self._prev_stall_s, self._prev_now
        self._prev_stall_s, self._prev_now = stall, signals.now
        if math.isnan(stall) or math.isnan(prev_stall):
            return False
        elapsed = signals.now - prev_now
        if elapsed <= 0:
            return False
        return (stall - prev_stall) / elapsed > self.stall_fraction


class TargetUtilizationPolicy(ScalingPolicy):
    """PID-style tracking of offered/capacity toward a target ratio.

    The error is ``utilization - target``; the control output (in
    worker units: ``active * error / target`` shaped by the PID terms)
    is clamped to ``max_step`` per decision.  A symmetric ``deadband``
    around zero error plus the cooldown prevent flapping; the integral
    term is clamped (anti-windup) so a long overload cannot bank an
    unbounded scale-in later.

    Utilization is *offered rate* over capacity -- it says nothing about
    backlog already queued.  After a flash crowd the offered rate drops
    while the queues are still full; shrinking then would starve the
    drain.  Scale-in is therefore additionally gated on queue delay and
    watermark lag being inside ``calm_delay_s`` (mirroring the
    threshold policy's calm band).
    """

    def __init__(
        self,
        *,
        target: float = 0.75,
        kp: float = 1.0,
        ki: float = 0.1,
        kd: float = 0.0,
        deadband: float = 0.1,
        cooldown_s: float = 20.0,
        settle_samples: int = 2,
        max_step: int = 2,
        integral_clamp: float = 2.0,
        calm_delay_s: float = 2.0,
    ) -> None:
        super().__init__(cooldown_s)
        if not 0 < target < 1:
            raise ValueError(f"target must be in (0, 1), got {target}")
        self.target = float(target)
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.deadband = float(deadband)
        self.settle_samples = int(settle_samples)
        self.max_step = int(max_step)
        self.integral_clamp = float(integral_clamp)
        self.calm_delay_s = float(calm_delay_s)
        self._integral = 0.0
        self._prev_error = float("nan")
        self._prev_now = float("nan")
        self._breach_since = float("nan")
        self._low_streak = 0

    def decide(self, signals: ScalingSignals) -> Optional[ScalingDecision]:
        now = signals.now
        utilization = signals.utilization
        if math.isnan(utilization):
            return None
        error = utilization - self.target
        dt = now - self._prev_now if not math.isnan(self._prev_now) else 0.0
        derivative = 0.0
        if dt > 0 and not math.isnan(self._prev_error):
            self._integral += error * dt
            self._integral = max(
                -self.integral_clamp, min(self.integral_clamp, self._integral)
            )
            derivative = (error - self._prev_error) / dt
        self._prev_error = error
        self._prev_now = now

        control = self.kp * error + self.ki * self._integral + self.kd * derivative
        if abs(control) <= self.deadband:
            self._breach_since = float("nan")
            self._low_streak = 0
            return None
        if math.isnan(self._breach_since):
            self._breach_since = now
        # Debounce the shrink direction only: over-target means latency
        # is already building, under-target merely wastes money.
        if control < 0:
            self._low_streak += 1
        else:
            self._low_streak = 0
        if self._in_cooldown(now):
            return None
        if control < 0 and self._low_streak < self.settle_samples:
            return None
        if control < 0 and not self._calm(signals):
            return None
        workers = max(1, signals.active_workers)
        raw = control * workers / self.target
        delta = int(math.copysign(math.ceil(min(abs(raw), self.max_step)), raw))
        if delta == 0:
            return None
        decision = self._commit(
            now,
            delta,
            "above-target" if delta > 0 else "below-target",
            self._breach_since,
        )
        self._breach_since = float("nan")
        self._low_streak = 0
        self._integral = 0.0
        return decision

    def _calm(self, signals: ScalingSignals) -> bool:
        """No queued backlog evidence: safe to remove capacity."""
        delay = signals.queue_delay_s
        lag = signals.watermark_lag_s
        return (math.isnan(delay) or delay < self.calm_delay_s) and (
            math.isnan(lag) or lag < self.calm_delay_s
        )
