"""Elastic autoscaling: policies, per-engine rescale mechanics, and
time-to-resustain metrology.

Import surface is deliberately cycle-free: :mod:`repro.engines.base`
imports :class:`RescaleSemantics` from here, so this package must never
import the engines (the scorecard, which needs the whole experiment
stack, is imported explicitly as :mod:`repro.autoscale.scorecard`).
"""

from repro.autoscale.metrics import (
    RescaleMetrics,
    compute_rescale_metrics,
    rescale_timeline_events,
)
from repro.autoscale.policy import (
    POLICY_NAMES,
    AutoscaleSpec,
    ScalingDecision,
    ScalingPolicy,
    ScalingSignals,
    TargetUtilizationPolicy,
    ThresholdPolicy,
)
from repro.autoscale.rescale import (
    RESCALE_STYLES,
    STYLE_MICRO_BATCH,
    STYLE_REBALANCE,
    STYLE_REPARTITION,
    STYLE_SAVEPOINT,
    Autoscaler,
    RescaleSemantics,
)

__all__ = [
    "AutoscaleSpec",
    "Autoscaler",
    "POLICY_NAMES",
    "RESCALE_STYLES",
    "RescaleMetrics",
    "RescaleSemantics",
    "STYLE_MICRO_BATCH",
    "STYLE_REBALANCE",
    "STYLE_REPARTITION",
    "STYLE_SAVEPOINT",
    "ScalingDecision",
    "ScalingPolicy",
    "ScalingSignals",
    "TargetUtilizationPolicy",
    "ThresholdPolicy",
    "compute_rescale_metrics",
    "rescale_timeline_events",
]
