"""Time-to-resustain metrology for elastic rescale events.

Mirrors :mod:`repro.faults.metrics`: the engine's :attr:`rescale_log`
records what the SUT *did*; this module measures what the benchmark
*observed* -- per scaling event, how long until the pipeline was
re-sustaining the offered load, decomposed the way an SRE would bill it:

    time_to_resustain = detect + provision + migrate + catch-up

- **detect**: first band-breaching registry sample -> policy decision
  (hysteresis, settle counts, and cooldown all show up here);
- **provision**: decision -> cutover (node boot + warm-up; zero when the
  capacity came from the standby pool);
- **migrate**: the cutover pause (engine style pause + NIC-bounded state
  migration);
- **catch-up**: capacity online -> the watermark lag back inside the
  sustain band for ``settle_samples`` consecutive registry samples.

Detection runs on the sampled ``driver.watermark_lag_s`` series -- the
same deterministic obs-registry signal the policies themselves read, so
the metrology needs nothing the driver could not really measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence


def _clean(value: float) -> Optional[float]:
    return None if math.isnan(value) else float(value)


@dataclass(frozen=True)
class RescaleMetrics:
    """Measured outcome of one scale-out/scale-in event."""

    kind: str
    """``scale-out`` or ``scale-in``."""
    decided_at_s: float
    delta: float
    """Workers added (negative: removed, including returned spares)."""
    from_workers: float
    to_workers: float
    reason: str
    spares: float
    """Hot spares consumed (scale-out) or returned (scale-in)."""
    detect_s: float
    provision_s: float
    migrate_s: float
    catchup_s: float
    time_to_resustain_s: float
    """detect + provision + migrate + catch-up; NaN if the trial ended
    before the pipeline re-sustained."""
    migrated_bytes: float
    lost_weight: float
    duplicated_weight: float

    @property
    def resustained(self) -> bool:
        """Whether the pipeline got back inside the sustain band."""
        return self.time_to_resustain_s == self.time_to_resustain_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "decided_at_s": self.decided_at_s,
            "delta": self.delta,
            "from_workers": self.from_workers,
            "to_workers": self.to_workers,
            "reason": self.reason,
            "spares": self.spares,
            "detect_s": _clean(self.detect_s),
            "provision_s": _clean(self.provision_s),
            "migrate_s": _clean(self.migrate_s),
            "catchup_s": _clean(self.catchup_s),
            "time_to_resustain_s": _clean(self.time_to_resustain_s),
            "migrated_bytes": float(self.migrated_bytes),
            "lost_weight": float(self.lost_weight),
            "duplicated_weight": float(self.duplicated_weight),
            "resustained": bool(self.resustained),
        }

    def describe(self) -> str:
        ttr = (
            f"{self.time_to_resustain_s:.2f}s"
            if self.resustained
            else "never"
        )
        return (
            f"{self.kind} {self.from_workers:.0f}->{self.to_workers:.0f} "
            f"@ t={self.decided_at_s:.1f}s ({self.reason}): "
            f"resustain {ttr} "
            f"(detect {self.detect_s:.2f}s + provision "
            f"{self.provision_s:.2f}s + migrate {self.migrate_s:.2f}s + "
            f"catch-up {self.catchup_s:.2f}s)"
        )


def compute_rescale_metrics(
    rescale_log: Sequence[Dict[str, Any]],
    lag_times: Sequence[float],
    lag_values: Sequence[float],
    duration_s: float,
    *,
    lag_bound_s: float = 2.0,
    settle_samples: int = 2,
) -> List[RescaleMetrics]:
    """Measure every event in ``rescale_log``.

    ``lag_times``/``lag_values`` are the sampled
    ``driver.watermark_lag_s`` series.  An event's catch-up ends at the
    first sample at-or-after capacity-online where the lag stays within
    ``lag_bound_s`` for ``settle_samples`` consecutive samples; the scan
    stops at the next event's decision (its own disturbance) or the
    trial end, whichever is earlier -- past that, the event never
    re-sustained and its open-ended legs are NaN.
    """
    if settle_samples < 1:
        raise ValueError(f"settle_samples must be >= 1, got {settle_samples}")
    metrics: List[RescaleMetrics] = []
    nan = float("nan")
    for index, entry in enumerate(rescale_log):
        decided = float(entry["decided_at_s"])
        cutover = entry.get("cutover_at_s")
        online = entry.get("online_at_s")
        provision = nan if cutover is None else float(cutover) - decided
        migrate = float(entry["pause_s"]) if "pause_s" in entry else nan
        horizon = duration_s
        if index + 1 < len(rescale_log):
            horizon = min(
                horizon, float(rescale_log[index + 1]["decided_at_s"])
            )
        catchup = nan
        resustain_at = nan
        if online is not None:
            resustain_at = _first_settled(
                lag_times,
                lag_values,
                start=float(online),
                horizon=horizon,
                bound=lag_bound_s,
                settle=settle_samples,
            )
            catchup = resustain_at - float(online)
        detect = float(entry.get("detect_s", 0.0))
        total = detect + (resustain_at - decided)
        metrics.append(
            RescaleMetrics(
                kind=str(entry["kind"]),
                decided_at_s=decided,
                delta=float(entry["delta"]),
                from_workers=float(entry["from_workers"]),
                to_workers=float(entry["to_workers"]),
                reason=str(entry.get("reason", "")),
                spares=float(
                    entry.get("spares_used", entry.get("spares_returned", 0.0))
                ),
                detect_s=detect,
                provision_s=provision,
                migrate_s=migrate,
                catchup_s=catchup,
                time_to_resustain_s=total,
                migrated_bytes=float(entry.get("migrated_bytes", 0.0)),
                lost_weight=float(entry.get("lost_weight", 0.0)),
                duplicated_weight=float(entry.get("duplicated_weight", 0.0)),
            )
        )
    return metrics


def _first_settled(
    times: Sequence[float],
    values: Sequence[float],
    *,
    start: float,
    horizon: float,
    bound: float,
    settle: int,
) -> float:
    """First sample time >= ``start`` opening ``settle`` consecutive
    in-bound samples (all before ``horizon``); NaN if none."""
    streak = 0
    opened = float("nan")
    for t, v in zip(times, values):
        if t < start:
            continue
        if t > horizon:
            break
        if v <= bound:
            if streak == 0:
                opened = float(t)
            streak += 1
            if streak >= settle:
                return opened
        else:
            streak = 0
            opened = float("nan")
    return float("nan")


def rescale_timeline_events(
    metrics: Sequence[RescaleMetrics],
) -> List[Dict[str, Any]]:
    """Timeline annotations for the trace log, one per measured event.

    Keys match :meth:`TraceLog.add_event`'s signature.
    """
    events: List[Dict[str, Any]] = []
    for m in metrics:
        if not m.resustained:
            continue
        events.append(
            {
                "kind": "autoscale.resustained",
                "at_time": m.decided_at_s - m.detect_s + m.time_to_resustain_s,
                "event": m.kind,
                "time_to_resustain_s": m.time_to_resustain_s,
            }
        )
    return events
