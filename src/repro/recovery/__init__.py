"""Recovery & degradation subsystem: the self-healing side of the SUT.

PR 2 injects faults; this package decides what the simulated engines do
about them.  Leaf policy modules (importable from anywhere, including
``engines.base``):

- :mod:`repro.recovery.reschedule` -- standby pools and operator
  rescheduling (:class:`~repro.recovery.reschedule.ReschedulePolicy`);
- :mod:`repro.recovery.degradation` -- load shedding and admission
  ramps (:class:`~repro.recovery.degradation.DegradationPolicy`).

Heavier modules sit above the core experiment stack and must be
imported directly (not re-exported here, to keep the engine layer free
of import cycles):

- :mod:`repro.recovery.aimd` -- the online AIMD rate controller used by
  :func:`repro.core.sustainable.find_sustainable_throughput_online`;
- :mod:`repro.recovery.chaos` -- the seeded chaos soak harness behind
  ``repro chaos``.
"""

from repro.recovery.degradation import (
    SHED_MODES,
    SHED_NEWEST,
    SHED_NONE,
    SHED_OLDEST,
    DegradationPolicy,
)
from repro.recovery.reschedule import (
    MODE_NONE,
    MODE_SPREAD,
    MODE_STANDBY,
    RESCHEDULE_MODES,
    ReschedulePlan,
    ReschedulePolicy,
)

__all__ = [
    "DegradationPolicy",
    "ReschedulePlan",
    "ReschedulePolicy",
    "RESCHEDULE_MODES",
    "SHED_MODES",
    "MODE_NONE",
    "MODE_SPREAD",
    "MODE_STANDBY",
    "SHED_NONE",
    "SHED_OLDEST",
    "SHED_NEWEST",
]
