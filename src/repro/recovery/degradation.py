"""Graceful degradation: bounded-latency load shedding + admission ramps.

The paper's failure rule is binary: if a driver queue overflows, the SUT
"cannot sustain the given throughput" and the trial dies.  Real engines
sit between those extremes -- near the sustainable-throughput knee
(Definition 5) they *degrade*: shed load to keep latency bounded, or
re-admit ingest gently after a recovery pause instead of slamming the
queues with the whole backlog at once (ShuffleBench, arXiv:2403.04570,
makes the same argument for sustained-load benchmarks).

:class:`DegradationPolicy` captures both behaviours per engine:

- **Load shedding** (``shed="oldest"`` / ``"newest"``): each tick the
  engine computes the backlog it can clear within
  ``max_queue_delay_s`` at current capacity and drops the excess at the
  driver queues *before* pulling.  Dropping ``oldest`` bounds the
  queueing delay directly (the head of the queue is the oldest data);
  dropping ``newest`` preserves in-flight history at the cost of fresher
  results.  Shed weight is first-class in the conservation ledgers:
  the driver-side balance becomes ``pushed == pulled + queued + shed``
  and the engine ledger grows a ``shed`` term so nothing silently
  disappears.
- **Admission ramp** (``readmission_ramp_s``): after a recovery or
  migration pause ends, the ingest budget is scaled from
  ``ramp_floor`` back to 1.0 linearly over the ramp window.  A zero
  ramp reproduces the legacy step re-admission.
"""

from __future__ import annotations

from dataclasses import dataclass

#: No shedding: queue overflow remains the fatal connection drop.
SHED_NONE = "none"
#: Drop from the queue head -- the oldest waiting cohorts.
SHED_OLDEST = "oldest"
#: Drop from the queue tail -- the newest arrivals.
SHED_NEWEST = "newest"

SHED_MODES = (SHED_NONE, SHED_OLDEST, SHED_NEWEST)


@dataclass(frozen=True)
class DegradationPolicy:
    """How an engine trades completeness for bounded latency."""

    shed: str = SHED_NONE
    """Load-shedding mode: ``none`` (legacy fail-on-overflow),
    ``oldest`` (bound queueing delay), or ``newest`` (favour history)."""
    max_queue_delay_s: float = 5.0
    """Latency bound the shedder enforces: backlog beyond what current
    capacity clears in this many seconds is dropped."""
    readmission_ramp_s: float = 0.0
    """After a recovery pause, ramp the ingest budget back to full over
    this window.  Zero is a step (the legacy behaviour)."""
    ramp_floor: float = 0.25
    """Admission fraction at the instant a pause ends, when ramping."""

    def __post_init__(self) -> None:
        if self.shed not in SHED_MODES:
            raise ValueError(
                f"shed must be one of {SHED_MODES}, got {self.shed!r}"
            )
        if self.max_queue_delay_s <= 0:
            raise ValueError(
                f"max_queue_delay_s must be positive, got {self.max_queue_delay_s}"
            )
        if self.readmission_ramp_s < 0:
            raise ValueError(
                f"readmission_ramp_s must be >= 0, got {self.readmission_ramp_s}"
            )
        if not 0 <= self.ramp_floor <= 1:
            raise ValueError(
                f"ramp_floor must be in [0, 1], got {self.ramp_floor}"
            )

    @property
    def sheds(self) -> bool:
        return self.shed != SHED_NONE

    @property
    def drop_oldest(self) -> bool:
        return self.shed == SHED_OLDEST

    # -- per-tick decisions ------------------------------------------------

    def shed_excess(
        self, backlog_weight: float, capacity_events_per_s: float
    ) -> float:
        """Weight to drop this tick so the backlog clears within the
        latency bound at current capacity.  Zero when not shedding or
        when the backlog is already within bounds (including the
        capacity-zero case during a pause: shedding while paused would
        throw away data the recovered engine could still process in
        time, so the bound is enforced only against live capacity)."""
        if not self.sheds or capacity_events_per_s <= 0:
            return 0.0
        allowed = capacity_events_per_s * self.max_queue_delay_s
        return max(0.0, backlog_weight - allowed)

    def admission_fraction(self, now: float, ramp_from_s: float) -> float:
        """Ingest-budget multiplier during the post-recovery ramp.

        ``ramp_from_s`` is when the pause ended (the ramp start); before
        it admission is irrelevant (the engine is paused), after
        ``readmission_ramp_s`` the multiplier is 1.
        """
        if self.readmission_ramp_s <= 0 or ramp_from_s < 0:
            return 1.0
        elapsed = now - ramp_from_s
        if elapsed >= self.readmission_ramp_s:
            return 1.0
        if elapsed < 0:
            return self.ramp_floor
        return self.ramp_floor + (1.0 - self.ramp_floor) * (
            elapsed / self.readmission_ramp_s
        )
