"""Chaos soak harness: seeded random fault schedules + invariant checks.

One fault schedule exercises one code path; a *soak* exercises the
product of {engines} x {recovery policies} x {randomized schedules} and
checks the properties that must hold on **every** path:

1. **conservation** -- the PR 3 weight ledgers balance on every trial,
   failed or not: engine-side ``ingested == staged + admitted +
   dropped`` and ``admitted == closed + stored + lost``; driver-side
   ``pushed == pulled + queued + shed + lost``;
2. **guarantee accounting** -- the engine's delivery guarantee holds
   under arbitrary fault interleavings (exactly-once loses and
   duplicates nothing, at-least-once loses nothing, at-most-once
   duplicates nothing);
3. **bounded recovery** -- a surviving trial ends with a bounded queue
   backlog (post-recovery event-time latency is bounded -- the SUT
   caught up, it is not quietly diverging at trial end);
4. **no hangs / no escapes** -- every trial returns a
   :class:`~repro.core.driver.TrialResult`; failures are flagged on the
   result, never raised out of the harness.

Schedules are drawn from a seeded generator, so a chaos run is fully
reproducible: the same seed yields byte-identical scorecards (pinned by
a determinism test), which makes the harness usable as a CI smoke step
(``repro chaos --seed 0 --rounds 3``).

The output is a per-(engine, policy) **recovery scorecard**: survival
counts, detection / recovery / catch-up milestones aggregated from the
driver-side recovery metrology, shed and migrated weight, and the list
of invariant violations (empty on a healthy build).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.driver import TrialResult
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.detect.plane import DETECTOR_KINDS, detector_spec
import repro.engines.ext  # noqa: F401  (registers heron/samza in ENGINES)
from repro.engines import engine_class
from repro.faults.schedule import (
    AsymmetricPartition,
    DegradingNode,
    DriverNodeSlow,
    DriverQueueLoss,
    FaultEvent,
    FaultSchedule,
    FlappingNode,
    GeneratorCrash,
    NetworkPartition,
    NodeCrash,
    ProcessRestart,
    QueueDisconnect,
    SlowNode,
    _GRAY_CAPACITY_KINDS,
    _GrayFaultEvent,
)
from repro.metrology.journal import TrialJournal
from repro.recovery.reschedule import MODE_STANDBY, ReschedulePolicy
from repro.sched.pool import TrialScheduler, TrialTask
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

DEFAULT_ENGINES = ("flink", "storm", "spark", "heron", "samza")


@dataclass(frozen=True)
class ChaosPolicy:
    """One recovery-policy configuration soaked against every engine."""

    name: str
    standby: int = 0
    shed: bool = False
    """Use the engine's :meth:`recommended_degradation` (load shedding
    + admission ramp) instead of the inert default."""

    def reschedule_policy(self) -> Optional[ReschedulePolicy]:
        if self.standby <= 0:
            return None
        return ReschedulePolicy(standby_nodes=self.standby, mode=MODE_STANDBY)


#: The three policy corners the scorecard compares: the legacy
#: fail-hard behaviour, pure graceful degradation, and standby
#: promotion with shedding on top.
DEFAULT_POLICIES: Tuple[ChaosPolicy, ...] = (
    ChaosPolicy(name="baseline"),
    ChaosPolicy(name="shed", shed=True),
    ChaosPolicy(name="standby", standby=1, shed=True),
)


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos soak: engines x policies x seeded rounds."""

    seed: int = 0
    rounds: int = 3
    engines: Tuple[str, ...] = DEFAULT_ENGINES
    policies: Tuple[ChaosPolicy, ...] = DEFAULT_POLICIES
    duration_s: float = 60.0
    rate: float = 30_000.0
    workers: int = 2
    generator_instances: int = 2
    max_faults_per_round: int = 3
    latency_bound_s: float = 20.0
    """Queue backlog age tolerated at the end of a *surviving* trial --
    the bounded post-recovery latency invariant."""
    driver_faults: bool = True
    """Mix driver-side faults (generator crash, queue loss, slow driver
    node) into the random schedules alongside the SUT faults -- the
    measurement plane is a fault domain too (see :mod:`repro.metrology`)."""
    detector: Optional[str] = None
    """Failure-detector kind driving suspect migrations on every trial
    (``timeout`` / ``phi`` / ``quorum``); ``None`` keeps the pre-existing
    fixed-timeout recovery semantics bit for bit."""
    gray_faults: bool = False
    """Mix gray failures (flapping node, fail-slow ramp, asymmetric
    partition) into the random schedules.  Off by default so the legacy
    draw sequence -- and therefore the journalled trial identity of
    existing soaks -- is untouched."""

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if not self.engines:
            raise ValueError("need at least one engine")
        if not self.policies:
            raise ValueError("need at least one policy")
        if self.max_faults_per_round < 1:
            raise ValueError("max_faults_per_round must be >= 1")
        if self.detector is not None and self.detector not in DETECTOR_KINDS:
            raise ValueError(
                f"unknown detector {self.detector!r}; "
                f"expected one of {DETECTOR_KINDS}"
            )


def random_fault_schedule(
    rng: np.random.Generator, config: ChaosConfig
) -> FaultSchedule:
    """Draw one randomized fault schedule.

    Faults land in the middle half of the trial (so warmup is clean and
    there is room to observe recovery), with kinds weighted toward the
    transient faults real clusters see most.  A crash may kill the last
    worker -- that is a *policy outcome* the scorecard records, not a
    harness error.

    With ``config.gray_faults`` the mix also draws the gray family
    (flapping node, fail-slow ramp, asymmetric partition); the legacy
    kinds keep their relative weights, scaled to make room.  Gray node
    targets are assigned in a deterministic post-pass
    (:func:`_place_gray_faults`) so the drawn schedule always passes
    :meth:`~repro.faults.schedule.FaultSchedule.validate_against`'s
    same-node overlap rejections.
    """
    count = int(rng.integers(1, config.max_faults_per_round + 1))
    times = np.sort(
        rng.uniform(0.25 * config.duration_s, 0.75 * config.duration_s, count)
    )
    if config.driver_faults:
        kinds = [
            "crash", "restart", "slow", "partition", "disconnect",
            "gencrash", "queueloss", "driverslow",
        ]
        weights = [0.15, 0.15, 0.2, 0.1, 0.15, 0.1, 0.1, 0.05]
    else:
        kinds = ["crash", "restart", "slow", "partition", "disconnect"]
        weights = [0.2, 0.2, 0.25, 0.15, 0.2]
    if config.gray_faults:
        kinds = kinds + ["flap", "degrade", "asympart"]
        weights = [w * 0.8 for w in weights] + [0.08, 0.08, 0.04]
    events: List[FaultEvent] = []
    for at_s in times:
        at_s = float(round(at_s, 3))
        kind = rng.choice(kinds, p=weights)
        if kind == "gencrash":
            events.append(
                GeneratorCrash(
                    at_s=at_s,
                    instance=int(rng.integers(0, config.generator_instances)),
                )
            )
        elif kind == "queueloss":
            events.append(
                DriverQueueLoss(
                    at_s=at_s,
                    queue_index=int(
                        rng.integers(0, config.generator_instances)
                    ),
                )
            )
        elif kind == "driverslow":
            events.append(
                DriverNodeSlow(
                    at_s=at_s,
                    instance=int(rng.integers(0, config.generator_instances)),
                    factor=float(round(rng.uniform(0.3, 0.8), 3)),
                    duration_s=float(round(rng.uniform(4.0, 10.0), 3)),
                )
            )
        elif kind == "crash":
            events.append(NodeCrash(at_s=at_s, nodes=1))
        elif kind == "restart":
            events.append(ProcessRestart(at_s=at_s, nodes=1))
        elif kind == "slow":
            events.append(
                SlowNode(
                    at_s=at_s,
                    nodes=1,
                    factor=float(round(rng.uniform(0.3, 0.8), 3)),
                    duration_s=float(round(rng.uniform(4.0, 10.0), 3)),
                )
            )
        elif kind == "partition":
            events.append(
                NetworkPartition(
                    at_s=at_s,
                    duration_s=float(round(rng.uniform(2.0, 6.0), 3)),
                )
            )
        elif kind == "flap":
            events.append(
                FlappingNode(
                    at_s=at_s,
                    duration_s=float(round(rng.uniform(8.0, 14.0), 3)),
                    period_s=float(round(rng.uniform(4.0, 8.0), 3)),
                    duty=float(round(rng.uniform(0.3, 0.6), 3)),
                    seed=int(rng.integers(0, 2**16)),
                )
            )
        elif kind == "degrade":
            events.append(
                DegradingNode(
                    at_s=at_s,
                    duration_s=float(round(rng.uniform(8.0, 14.0), 3)),
                    floor_factor=float(round(rng.uniform(0.2, 0.5), 3)),
                )
            )
        elif kind == "asympart":
            events.append(
                AsymmetricPartition(
                    at_s=at_s,
                    duration_s=float(round(rng.uniform(4.0, 10.0), 3)),
                    direction=str(rng.choice(("heartbeat", "data"))),
                )
            )
        else:
            events.append(
                QueueDisconnect(
                    at_s=at_s,
                    queue_index=int(
                        rng.integers(0, config.generator_instances)
                    ),
                    duration_s=float(round(rng.uniform(2.0, 6.0), 3)),
                )
            )
    if config.gray_faults:
        events = _place_gray_faults(events, config.workers)
    return FaultSchedule(tuple(events))


def _place_gray_faults(
    events: List[FaultEvent], workers: int
) -> List[FaultEvent]:
    """Deterministically retarget the gray faults of one draw so the
    schedule always passes ``validate_against``'s overlap rejections.

    Gray capacity faults (flap / degrade) claim the lowest node index
    that is (a) outside the anonymous target range ``[0, nodes)`` of
    every time-overlapping :class:`SlowNode` and (b) not claimed by a
    time-overlapping gray capacity fault already placed; when no node
    is free the event is dropped -- a deterministically shorter
    schedule instead of an invalid one.  Asymmetric partitions carry no
    overlap constraint and pin the highest worker index.
    """
    slows = [e for e in events if isinstance(e, SlowNode)]
    placed: List[_GrayFaultEvent] = []
    out: List[FaultEvent] = []
    for event in events:
        if not isinstance(event, _GrayFaultEvent):
            out.append(event)
            continue
        if event.kind not in _GRAY_CAPACITY_KINDS:
            out.append(replace(event, node=max(0, workers - 1)))
            continue
        chosen: Optional[int] = None
        for node in range(workers):
            blocked = any(
                node < s.nodes
                and event.at_s < s.end_s
                and s.at_s < event.end_s
                for s in slows
            ) or any(
                g.node == node
                and event.at_s < g.end_s
                and g.at_s < event.end_s
                for g in placed
            )
            if not blocked:
                chosen = node
                break
        if chosen is None:
            continue
        event = replace(event, node=chosen)
        placed.append(event)
        out.append(event)
    return out


# -- invariants -------------------------------------------------------------

#: Ledger imbalance tolerated, relative to the trial's total weight
#: (float accumulation over ~1e3 ticks).
LEDGER_REL_TOL = 1e-6

#: Engine name -> (loses nothing, duplicates nothing) under its default
#: delivery guarantee.
_GUARANTEE_RULES = {
    "exactly-once": (True, True),
    "at-least-once": (True, False),
    "at-most-once": (False, True),
}


def check_invariants(
    result: TrialResult, config: ChaosConfig, label: str
) -> List[str]:
    """All chaos invariants for one trial; returns violation strings."""
    violations: List[str] = []
    d = result.diagnostics
    scale = max(1.0, d.get("conservation.ingested", 0.0))
    tol = LEDGER_REL_TOL * scale

    def balance(name: str, lhs: float, rhs: float) -> None:
        if abs(lhs - rhs) > tol:
            violations.append(
                f"{label}: {name} ledger imbalance "
                f"({lhs:.6f} != {rhs:.6f}, tol {tol:.2e})"
            )

    if "conservation.staged" in d:
        balance(
            "ingest",
            d["conservation.ingested"],
            d["conservation.staged"]
            + d["conservation.admitted"]
            + d["conservation.dropped"],
        )
        balance(
            "window",
            d["conservation.admitted"],
            d["conservation.closed"]
            + d["conservation.stored"]
            + d["conservation.lost"],
        )
    driver_scale = max(1.0, d.get("driver.pushed_weight", 0.0))
    if abs(
        d.get("driver.pushed_weight", 0.0)
        - d.get("driver.pulled_weight", 0.0)
        - d.get("driver.queued_weight", 0.0)
        - d.get("driver.shed_weight", 0.0)
        - d.get("driver.lost_weight", 0.0)
    ) > LEDGER_REL_TOL * driver_scale:
        violations.append(
            f"{label}: driver ledger imbalance "
            "(pushed != pulled + queued + shed + lost)"
        )
    guarantee = engine_class(result.engine).default_guarantee.value
    no_loss, no_dup = _GUARANTEE_RULES[guarantee]
    if no_loss and d.get("lost_weight", 0.0) > tol:
        violations.append(
            f"{label}: {guarantee} engine lost "
            f"{d['lost_weight']:.3f} weight"
        )
    if no_dup and d.get("duplicated_weight", 0.0) > tol:
        violations.append(
            f"{label}: {guarantee} engine duplicated "
            f"{d['duplicated_weight']:.3f} weight"
        )
    if not result.failed:
        end_delay = result.throughput.queue_delay_at_end()
        if end_delay > config.latency_bound_s:
            violations.append(
                f"{label}: post-recovery backlog unbounded -- oldest "
                f"queued event is {end_delay:.1f}s old at trial end "
                f"(> {config.latency_bound_s:g}s)"
            )
        if result.failure_time == result.failure_time:
            violations.append(
                f"{label}: surviving trial carries a failure_time"
            )
    elif result.failure_time != result.failure_time:
        violations.append(f"{label}: failed trial lost its failure_time")
    detection = getattr(result, "detection", None)
    if detection is not None:
        if detection.calm and detection.false_positives > 0:
            violations.append(
                f"{label}: {detection.false_positives} false positive(s) "
                f"under a calm schedule -- the {detection.detector} "
                f"detector convicted a healthy node with no fault injected"
            )
        if detection.cascade_depth_max > config.workers:
            violations.append(
                f"{label}: migration cascade depth "
                f"{detection.cascade_depth_max} exceeds the cluster size "
                f"({config.workers}) -- suspect migrations are chaining "
                f"past the structural bound"
            )
    return violations


# -- the soak ---------------------------------------------------------------


def _round6(value: float) -> Optional[float]:
    """JSON-safe 6-significant-digit rounding (None for NaN/inf)."""
    if value != value or value in (float("inf"), float("-inf")):
        return None
    if value == 0.0:
        return 0.0
    magnitude = math.floor(math.log10(abs(value)))
    return round(value, -magnitude + 5)


def _clean(value: float) -> Optional[float]:
    """NaN -> None (JSON-safe, reversed by ``_nan`` on absorb)."""
    return None if value != value else float(value)


def _nan(value: Optional[float]) -> float:
    return float("nan") if value is None else float(value)


def trial_digest(result: TrialResult, violations: List[str]) -> Dict[str, object]:
    """Everything the scorecard needs from one trial, as a JSON-safe
    dict.  The scorecard absorbs *digests* (never raw results), so a
    journal-replayed trial aggregates bit-for-bit like a live one --
    the chaos resume byte-identity rests on this."""
    d = result.diagnostics
    recovery = []
    for entry in getattr(result, "recovery", None) or []:
        recovery.append(
            {
                "detection_s": _clean(entry.detection_s),
                "migrated_bytes": float(getattr(entry, "migrated_bytes", 0.0)),
                "recovered": bool(entry.recovered),
                "recovery_time_s": _clean(entry.recovery_time_s),
                "detection_phase_s": _clean(entry.detection_phase_s),
                "restore_phase_s": _clean(entry.restore_phase_s),
                "catchup_phase_s": _clean(entry.catchup_phase_s),
                "catchup_throughput": _clean(entry.catchup_throughput),
                "lost_weight": float(entry.lost_weight),
                "duplicated_weight": float(entry.duplicated_weight),
            }
        )
    detection = getattr(result, "detection", None)
    return {
        "failed": bool(result.failed),
        "detection": None if detection is None else detection.to_dict(),
        "end_queue_delay_s": (
            0.0 if result.failed else float(result.throughput.queue_delay_at_end())
        ),
        "faults_injected": float(d.get("faults_injected", 0.0)),
        "driver_faults_injected": float(d.get("driver.faults_injected", 0.0)),
        "shed_weight": float(d.get("shed_weight", 0.0)),
        "standbys_promoted": float(d.get("standbys_promoted", 0.0)),
        "lost_weight": float(d.get("lost_weight", 0.0)),
        "duplicated_weight": float(d.get("duplicated_weight", 0.0)),
        "driver_lost_weight": float(d.get("driver.lost_weight", 0.0)),
        "recovery": recovery,
        "violations": list(violations),
    }


@dataclass
class Scorecard:
    """Aggregated recovery behaviour of one (engine, policy) cell."""

    engine: str
    policy: str
    rounds: int = 0
    survived: int = 0
    failed: int = 0
    faults_injected: int = 0
    driver_faults_injected: int = 0
    faults_recovered: int = 0
    faults_unrecovered: int = 0
    detection_s_sum: float = 0.0
    detect_phase_s_sum: float = 0.0
    restore_phase_s_sum: float = 0.0
    catchup_phase_s_sum: float = 0.0
    fault_lost_weight: float = 0.0
    fault_duplicated_weight: float = 0.0
    recovery_s_max: float = 0.0
    catchup_rate_max: float = 0.0
    shed_weight: float = 0.0
    migrated_bytes: float = 0.0
    standbys_promoted: float = 0.0
    lost_weight: float = 0.0
    duplicated_weight: float = 0.0
    driver_lost_weight: float = 0.0
    end_queue_delay_s_max: float = 0.0
    false_positives: int = 0
    spurious_migration_node_s: float = 0.0
    cascade_depth_max: int = 0
    metastable: int = 0
    violations: List[str] = field(default_factory=list)

    def absorb(self, result: TrialResult, violations: List[str]) -> None:
        self.absorb_digest(trial_digest(result, violations))

    def absorb_digest(self, digest: Dict[str, object]) -> None:
        """Fold one trial digest into the cell.  Live trials and
        journal-replayed ones go through this same method, so a resumed
        soak aggregates bit-for-bit."""
        self.rounds += 1
        if digest["failed"]:
            self.failed += 1
        else:
            self.survived += 1
            self.end_queue_delay_s_max = max(
                self.end_queue_delay_s_max,
                float(digest["end_queue_delay_s"]),
            )
        self.faults_injected += int(digest["faults_injected"])
        self.driver_faults_injected += int(digest.get("driver_faults_injected", 0.0))
        self.shed_weight += float(digest["shed_weight"])
        self.standbys_promoted += float(digest["standbys_promoted"])
        self.lost_weight += float(digest["lost_weight"])
        self.duplicated_weight += float(digest["duplicated_weight"])
        self.driver_lost_weight += float(digest.get("driver_lost_weight", 0.0))
        detection = digest.get("detection")
        if detection is not None:
            self.false_positives += int(detection["false_positives"])
            self.spurious_migration_node_s += float(
                detection["spurious_migration_node_s"] or 0.0
            )
            self.cascade_depth_max = max(
                self.cascade_depth_max, int(detection["cascade_depth_max"])
            )
            self.metastable += int(bool(detection["metastable"]))
        for entry in digest["recovery"]:
            detection = _nan(entry["detection_s"])
            if detection == detection:
                self.detection_s_sum += detection
            self.migrated_bytes += float(entry["migrated_bytes"])
            self.fault_lost_weight += float(entry.get("lost_weight", 0.0))
            self.fault_duplicated_weight += float(
                entry.get("duplicated_weight", 0.0)
            )
            if entry["recovered"]:
                self.faults_recovered += 1
                self.recovery_s_max = max(
                    self.recovery_s_max, _nan(entry["recovery_time_s"])
                )
                for key, attr in (
                    ("detection_phase_s", "detect_phase_s_sum"),
                    ("restore_phase_s", "restore_phase_s_sum"),
                    ("catchup_phase_s", "catchup_phase_s_sum"),
                ):
                    phase = _nan(entry.get(key))
                    if phase == phase:
                        setattr(self, attr, getattr(self, attr) + phase)
                catchup = _nan(entry["catchup_throughput"])
                if catchup == catchup:
                    self.catchup_rate_max = max(
                        self.catchup_rate_max, catchup
                    )
            else:
                self.faults_unrecovered += 1
        self.violations.extend(digest["violations"])

    def _phase_mean(self, phase: str) -> float:
        """Mean per-recovered-fault phase duration (0 when none
        recovered: the decomposition only exists for recovered faults)."""
        if not self.faults_recovered:
            return 0.0
        total = getattr(self, f"{phase}_phase_s_sum")
        return total / self.faults_recovered

    def to_dict(self) -> Dict[str, object]:
        detection_mean = (
            self.detection_s_sum / self.faults_injected
            if self.faults_injected
            else 0.0
        )
        return {
            "engine": self.engine,
            "policy": self.policy,
            "rounds": self.rounds,
            "survived": self.survived,
            "failed": self.failed,
            "faults_injected": self.faults_injected,
            "driver_faults_injected": self.driver_faults_injected,
            "faults_recovered": self.faults_recovered,
            "faults_unrecovered": self.faults_unrecovered,
            "detection_s_mean": _round6(detection_mean),
            "recovery_s_max": _round6(self.recovery_s_max),
            "detect_phase_s_mean": _round6(self._phase_mean("detect")),
            "restore_phase_s_mean": _round6(self._phase_mean("restore")),
            "catchup_phase_s_mean": _round6(self._phase_mean("catchup")),
            "fault_lost_weight": _round6(self.fault_lost_weight),
            "fault_duplicated_weight": _round6(self.fault_duplicated_weight),
            "catchup_rate_max": _round6(self.catchup_rate_max),
            "shed_weight": _round6(self.shed_weight),
            "migrated_bytes": _round6(self.migrated_bytes),
            "standbys_promoted": _round6(self.standbys_promoted),
            "lost_weight": _round6(self.lost_weight),
            "duplicated_weight": _round6(self.duplicated_weight),
            "driver_lost_weight": _round6(self.driver_lost_weight),
            "end_queue_delay_s_max": _round6(self.end_queue_delay_s_max),
            "false_positives": self.false_positives,
            "spurious_migration_node_s": _round6(
                self.spurious_migration_node_s
            ),
            "cascade_depth_max": self.cascade_depth_max,
            "metastable": self.metastable,
            "violations": sorted(self.violations),
        }


@dataclass
class ChaosReport:
    """Everything one soak produced."""

    config: ChaosConfig
    schedules: List[str]
    scorecards: Dict[Tuple[str, str], Scorecard]

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for card in self.scorecards.values():
            out.extend(card.violations)
        return sorted(out)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.config.seed,
            "rounds": self.config.rounds,
            "duration_s": self.config.duration_s,
            "rate": self.config.rate,
            "workers": self.config.workers,
            "schedules": list(self.schedules),
            "scorecards": {
                f"{engine}/{policy}": card.to_dict()
                for (engine, policy), card in sorted(self.scorecards.items())
            },
            "violations": self.violations,
        }

    def to_json(self) -> str:
        """Canonical serialisation -- byte-identical for equal seeds."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        """ASCII scorecard table."""
        header = (
            f"{'engine/policy':<18} {'ok':>5} {'fail':>4} {'faults':>6} "
            f"{'recov':>5} {'det(s)':>7} {'rst(s)':>7} {'cat(s)':>7} "
            f"{'rec(s)':>7} {'lost':>8} {'dup':>8} {'shed':>10} "
            f"{'promoted':>8} {'viol':>4}"
        )
        lines = [header, "-" * len(header)]
        for (engine, policy), card in sorted(self.scorecards.items()):
            d = card.to_dict()
            lines.append(
                f"{engine + '/' + policy:<18} {card.survived:>5} "
                f"{card.failed:>4} {card.faults_injected:>6} "
                f"{card.faults_recovered:>5} "
                f"{d['detect_phase_s_mean'] or 0:>7.2f} "
                f"{d['restore_phase_s_mean'] or 0:>7.2f} "
                f"{d['catchup_phase_s_mean'] or 0:>7.2f} "
                f"{d['recovery_s_max'] or 0:>7.2f} "
                f"{card.fault_lost_weight:>8.0f} "
                f"{card.fault_duplicated_weight:>8.0f} "
                f"{card.shed_weight:>10.0f} "
                f"{card.standbys_promoted:>8.0f} "
                f"{len(card.violations):>4}"
            )
        status = "PASS" if self.ok else "FAIL"
        lines.append("-" * len(header))
        lines.append(
            f"{status}: {len(self.scorecards)} cells, "
            f"{self.config.rounds} rounds, seed {self.config.seed}, "
            f"{len(self.violations)} invariant violations"
        )
        if not self.ok:
            lines.extend(f"  ! {violation}" for violation in self.violations)
        return "\n".join(lines)


def _trial_spec(
    engine: str,
    policy: ChaosPolicy,
    schedule: FaultSchedule,
    config: ChaosConfig,
    seed: int,
) -> ExperimentSpec:
    degradation = (
        engine_class(engine).recommended_degradation() if policy.shed else None
    )
    return ExperimentSpec(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=config.workers,
        profile=config.rate,
        duration_s=config.duration_s,
        seed=seed,
        generator=GeneratorConfig(instances=config.generator_instances),
        monitor_resources=False,
        faults=schedule,
        standby=policy.standby,
        reschedule=policy.reschedule_policy(),
        degradation=degradation,
        detector=detector_spec(config.detector),
    )


def chaos_fingerprint(config: ChaosConfig) -> str:
    """Identity of a soak for journal resume: a resumed run must replay
    trials only from a journal written by the *same* soak.  Scheduler
    parallelism is deliberately absent -- a parallel run and a serial
    run of the same config are the same experiment (byte-identical
    scorecards), so their journals are interchangeable.  The version
    tag versions the *digest schema*: ``v2`` (PR 9) added the recovery
    phase decomposition and per-fault guarantee weights to
    ``trial_digest``; ``v3`` adds the ``detection`` section (and the
    scorecard columns folded from it), so journals written before that
    carry digests the scorecard would aggregate differently -- they
    must mismatch loudly, not silently resume.  The detector kind and
    the gray-fault flag need no extra terms here: both live on
    :class:`ChaosConfig`, so ``config!r`` already separates their
    journals."""
    return f"chaos|v3|{config!r}"


def round_seed(seed: int, round_index: int) -> int:
    """Per-round trial seed, collision-free across ``(seed, round)``.

    The old ``seed * 1_000 + round_index`` arithmetic collided across
    configs (seed=1/round=0 drew the same trials as seed=0/round=1000);
    deriving through :class:`numpy.random.SeedSequence` spawning -- the
    same scheme :mod:`repro.sim.rng` uses for per-component streams --
    keys the seed on the *pair*, not their sum.
    """
    sequence = np.random.SeedSequence([int(seed), int(round_index)])
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def _cell_label(engine: str, policy_name: str, round_index: int) -> str:
    return f"{engine}/{policy_name}/round{round_index}"


def _chaos_cell_task(payload) -> Dict[str, object]:
    """Scheduler worker body: one (engine, policy, round) trial cell.

    The fault schedule and per-round seed are re-derived from the
    config -- pure functions of ``(seed, round_index)`` -- so a worker
    needs no state beyond the payload and the digest it returns is
    bit-identical to what the serial loop would have produced.
    """
    config, engine, policy, round_index = payload
    label = _cell_label(engine, policy.name, round_index)
    rng = np.random.default_rng([config.seed, round_index])
    schedule = random_fault_schedule(rng, config)
    spec = _trial_spec(
        engine, policy, schedule, config,
        seed=round_seed(config.seed, round_index),
    )
    result = run_experiment(spec)
    violations = check_invariants(result, config, label)
    return trial_digest(result, violations)


def run_chaos(
    config: ChaosConfig = ChaosConfig(),
    progress=None,
    journal: Optional[TrialJournal] = None,
    workers: int = 1,
) -> ChaosReport:
    """Run the soak: for each round, draw one fault schedule and push it
    through every (engine, policy) cell, checking invariants on every
    trial.  ``progress`` (if given) is called with a status line per
    trial.  With a ``journal``, completed trials are persisted as
    digests and replayed on resume -- the final scorecard JSON is
    byte-identical to an uninterrupted run.

    ``workers > 1`` fans the independent trial cells out over a
    :class:`~repro.sched.TrialScheduler` process pool (``workers`` here
    is scheduler parallelism; the simulated cluster size is
    ``config.workers``).  Execution order changes, nothing else: cells
    are absorbed into the scorecards in the fixed grid order, so the
    scorecard JSON is byte-identical to the serial soak.
    """
    scorecards: Dict[Tuple[str, str], Scorecard] = {
        (engine, policy.name): Scorecard(engine=engine, policy=policy.name)
        for engine in config.engines
        for policy in config.policies
    }
    schedules: List[str] = []
    grid: List[Tuple[str, str, str]] = []  # (label, engine, policy name)
    tasks: List[TrialTask] = []
    for round_index in range(config.rounds):
        rng = np.random.default_rng([config.seed, round_index])
        schedules.append(random_fault_schedule(rng, config).describe())
        for engine in config.engines:
            for policy in config.policies:
                label = _cell_label(engine, policy.name, round_index)
                grid.append((label, engine, policy.name))
                tasks.append(
                    TrialTask(
                        key=label,
                        fn=_chaos_cell_task,
                        payload=(config, engine, policy, round_index),
                    )
                )

    def status_line(label: str, digest, replayed: str) -> str:
        status = "FAILED" if digest["failed"] else "ok"
        count = len(digest["violations"])
        return f"{label}: {status}{replayed}" + (
            f" ({count} violations)" if count else ""
        )

    on_result = on_replay = None
    if progress is not None:
        on_result = lambda label, digest: progress(  # noqa: E731
            status_line(label, digest, "")
        )
        on_replay = lambda label, digest: progress(  # noqa: E731
            status_line(label, digest, " (journal)")
        )
    scheduler = TrialScheduler(workers=workers, journal=journal)
    digests = scheduler.run(tasks, on_result=on_result, on_replay=on_replay)
    # Absorb in fixed grid order: float accumulation in the scorecards
    # is order-sensitive, so completion order must never leak in.
    for label, engine, policy_name in grid:
        scorecards[(engine, policy_name)].absorb_digest(digests[label])
    return ChaosReport(
        config=config, schedules=schedules, scorecards=scorecards
    )
