"""Online AIMD probe for sustainable throughput.

The offline search (:func:`repro.core.sustainable.
find_sustainable_throughput`) reproduces the paper's procedure: run a
whole trial per probed rate, bisect.  That is O(log) *trials*.  The
online controller finds the same knee in a **single trial**: the offered
load starts at the probe ceiling and an additive-increase /
multiplicative-decrease loop steers it against live driver-side health
signals from the obs registry (PR 3) -- the age of the oldest queued
event (``driver.oldest_wait_s``) and its trend.  This is TCP congestion
control pointed at Definition 5: the queue between driver and SUT plays
the bottleneck router, backpressure plays packet loss.

The controller additionally keeps a **bisection bracket** as a side
effect of the AIMD trajectory: ``floor`` is the highest rate ever held
healthy for a full control interval, ``ceiling_rate`` the lowest rate
that triggered a backoff.  Additive increases that would cross the
known-bad ceiling step to the bracket midpoint instead, so late in the
trial the controller converges like bisection -- which is what makes
the estimate land within a probe-step of the offline search instead of
sawtoothing around the knee forever.

The controller is strictly a *driver-side* instrument: it is installed
through ``run_experiment``'s ``driver_hook`` seam and steers the
generators' :class:`~repro.workloads.profiles.AdaptiveRate` profile.
The engine never sees it -- measurement isolation (Section III-C) is
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.workloads.profiles import AdaptiveRate

OLDEST_WAIT_GAUGE = "driver.oldest_wait_s"
QUEUE_DEPTH_GAUGE = "driver.queue_depth_total"


@dataclass(frozen=True)
class AimdConfig:
    """Tuning of the online probe.

    The health thresholds deliberately mirror the offline
    :class:`~repro.core.sustainable.SustainabilityCriteria` (bounded
    queueing delay, bounded latency trend) but are tighter: the offline
    judgement sees a whole trial of evidence, the controller must react
    within a control interval or two.
    """

    control_interval_s: float = 2.0
    """How often the controller observes and acts."""
    warmup_s: float = 5.0
    """Leave the pipeline alone this long before the first decision."""
    increase_fraction: float = 0.05
    """Additive-increase step as a fraction of the current rate."""
    decrease_factor: float = 0.7
    """Multiplicative backoff on an unhealthy signal."""
    max_queue_delay_s: float = 2.5
    """Oldest-queued-event age beyond which the rate is unhealthy."""
    max_wait_slope: float = 0.05
    """Tolerated growth of the oldest wait (seconds per second): a
    persistently positive slope is prolonged backpressure even while
    the absolute wait is still small."""
    drain_fraction: float = 0.5
    """After a backoff, hold the rate until the oldest wait falls below
    ``max_queue_delay_s * drain_fraction`` -- increasing into an
    undrained backlog would blame the new rate for the old one's
    queue."""
    min_rate: float = 1.0
    """Backoffs never steer below this rate (events/s)."""

    def __post_init__(self) -> None:
        if self.control_interval_s <= 0:
            raise ValueError("control_interval_s must be positive")
        if not 0 < self.increase_fraction < 1:
            raise ValueError(
                f"increase_fraction must be in (0, 1), got {self.increase_fraction}"
            )
        if not 0 < self.decrease_factor < 1:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {self.decrease_factor}"
            )
        if self.max_queue_delay_s <= 0:
            raise ValueError("max_queue_delay_s must be positive")
        if not 0 < self.drain_fraction <= 1:
            raise ValueError(
                f"drain_fraction must be in (0, 1], got {self.drain_fraction}"
            )


@dataclass
class AimdDecision:
    """One control step, exported with search results."""

    at_s: float
    rate: float
    oldest_wait_s: float
    wait_slope: float
    healthy: bool
    action: str
    """``hold`` / ``increase`` / ``bisect`` / ``backoff`` / ``drain``."""
    next_rate: float


class AimdController:
    """Steers an :class:`AdaptiveRate` against live registry gauges."""

    def __init__(
        self,
        profile: AdaptiveRate,
        registry,
        config: Optional[AimdConfig] = None,
    ) -> None:
        self.profile = profile
        self.registry = registry
        self.config = config or AimdConfig()
        self.decisions: List[AimdDecision] = []
        self.floor = float("nan")
        """Highest rate held healthy through a full control interval."""
        self.ceiling_rate = float("inf")
        """Lowest rate that triggered a backoff."""
        self._prev_wait = 0.0
        self._prev_rate: Optional[float] = None
        self._draining = False
        self._process = None

    # -- lifecycle ---------------------------------------------------------

    def install(self, sim) -> None:
        """Register the control loop on the trial's simulator."""
        if self._process is not None:
            raise RuntimeError("controller already installed")
        cfg = self.config
        self._process = sim.every(
            cfg.control_interval_s,
            self._control_tick,
            start=sim.now + max(cfg.warmup_s, cfg.control_interval_s),
        )

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # -- the control loop --------------------------------------------------

    def _control_tick(self, sim) -> None:
        cfg = self.config
        rate = self.profile.rate
        wait = self.registry.latest(OLDEST_WAIT_GAUGE)
        if wait != wait:  # gauge not bound yet
            wait = 0.0
        slope = (wait - self._prev_wait) / cfg.control_interval_s
        healthy = wait <= cfg.max_queue_delay_s and slope <= cfg.max_wait_slope
        if healthy:
            if self._draining and wait > cfg.max_queue_delay_s * cfg.drain_fraction:
                # Backlog from the over-rate phase is still clearing.
                action, next_rate = "drain", rate
            else:
                self._draining = False
                if self._prev_rate == rate and rate < self.ceiling_rate:
                    # Held through a full interval and judged healthy:
                    # this rate is an observed floor.
                    self.floor = (
                        rate if self.floor != self.floor
                        else max(self.floor, rate)
                    )
                # Clamp to the profile's hard ceiling *here* (not only
                # inside set_rate) so holding at the probe ceiling reads
                # as "hold" and the floor bookkeeping sees the rate that
                # is actually applied.
                step = rate * cfg.increase_fraction
                candidate = min(rate + step, self.profile.ceiling)
                if candidate >= self.ceiling_rate:
                    # Crossing into known-bad territory: bisect the
                    # bracket instead of blindly stepping over it.
                    candidate = (rate + self.ceiling_rate) / 2.0
                    action = "bisect"
                else:
                    action = "increase"
                if candidate <= rate * (1.0 + 1e-9):
                    action, next_rate = "hold", rate
                else:
                    next_rate = candidate
        else:
            # Attribute the unhealth to the *current* rate only when
            # this interval started drained: a backlog inherited from a
            # higher earlier rate (the initial descent from the probe
            # ceiling) says nothing about the rate now applied, and
            # letting it poison the bracket pins the ceiling far below
            # the knee.
            if self._prev_wait <= cfg.max_queue_delay_s * cfg.drain_fraction:
                self.ceiling_rate = min(self.ceiling_rate, rate)
            next_rate = max(rate * cfg.decrease_factor, cfg.min_rate)
            action = "backoff"
            self._draining = True
        self.decisions.append(
            AimdDecision(
                at_s=sim.now,
                rate=rate,
                oldest_wait_s=wait,
                wait_slope=slope,
                healthy=healthy,
                action=action,
                next_rate=next_rate,
            )
        )
        if next_rate != rate:
            self.profile.set_rate(next_rate, at_time=sim.now)
        self._prev_wait = wait
        self._prev_rate = next_rate

    # -- the estimate ------------------------------------------------------

    @property
    def estimate(self) -> float:
        """The sustainable-rate estimate: the highest rate observed
        healthy for a full interval, capped by the lowest rate observed
        unhealthy.  NaN when no rate was ever held healthy -- mirroring
        the offline search's no-probe-sustained contract."""
        if self.floor != self.floor:
            return float("nan")
        if self.ceiling_rate == float("inf"):
            return self.floor
        return min(self.floor, self.ceiling_rate)

    def trajectory(self) -> List[Tuple[float, float]]:
        """The applied ``(time, rate)`` trajectory."""
        return list(self.profile.changes)
