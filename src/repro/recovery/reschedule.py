"""Operator rescheduling after node faults: standby pools and spreading.

PR 2's fault layer *injects* faults; the engine reaction it modelled is
the one real deployment nobody runs in production: a NodeCrash removes
capacity forever and killing the last worker aborts the trial.  Real
Flink/Storm/Spark clusters run with spare slots: the resource manager
reschedules the dead node's operator slots onto a **standby** node (a
hot spare that runs no operators until promoted) or **spreads** them
over the survivors.  Vogel et al. (arXiv:2404.06203) show the recovery
*strategy* -- where work lands and what state has to move -- dominates
post-fault latency, so it must be a benchmark knob, not a hardcoded
behaviour.

:class:`ReschedulePolicy` is that knob.  Given a crash it produces a
:class:`ReschedulePlan`:

- how many standbys are promoted (capacity returns once migration
  completes);
- whether the remaining dead slots spread over survivors (the job keeps
  running at reduced capacity) or the policy gives up
  (``mode="none"``: the legacy PR 2 behaviour, where losing the last
  worker is fatal);
- the **state-migration pause**: the dead nodes' share of operator
  state (``state_bytes * lost_fraction``) pulled over the receiving
  nodes' NICs at ``migration_nic_fraction`` of line rate.  This is the
  *slot placement* cost, additional to the engine's checkpoint-derived
  recovery pause (which models state *reconstruction*, not placement).

Transient faults are planned too: a :class:`~repro.faults.schedule.
SlowNode` that outlasts the failure detector can be masked by promoting
a standby in place of the straggler; one that clears before the
detector fires must **not** trigger a migration (moving state for a
blip costs more than riding it out).  Network partitions never migrate:
no node is at fault, so there is nothing to reschedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cluster import NodeSpec

#: Legacy behaviour: no standbys are promoted and nothing is spread --
#: capacity is simply gone; losing every worker fails the trial.
MODE_NONE = "none"
#: Survivors absorb the dead node's slots after a state migration.
MODE_SPREAD = "spread"
#: Standbys are promoted first; leftover slots spread over survivors.
MODE_STANDBY = "standby"

RESCHEDULE_MODES = (MODE_NONE, MODE_SPREAD, MODE_STANDBY)


@dataclass(frozen=True)
class ReschedulePlan:
    """The policy's decision for one crash (or detected straggler)."""

    promoted: int
    """Standby nodes promoted into the dead nodes' slots."""
    survivors: int
    """Active workers remaining after the crash (excluding standbys
    still warming up through their migration)."""
    migrated_bytes: float
    """Operator-state bytes that must move to the new slot owners."""
    migration_pause_s: float
    """Extra processing outage while the migrated state is in flight."""
    fatal: bool
    """True when no placement exists: no survivors and no standbys."""

    def __post_init__(self) -> None:
        if self.promoted < 0 or self.survivors < 0:
            raise ValueError(
                "promoted and survivors must be >= 0, got "
                f"({self.promoted}, {self.survivors})"
            )
        if self.migrated_bytes < 0 or self.migration_pause_s < 0:
            raise ValueError(
                "migrated_bytes and migration_pause_s must be >= 0, got "
                f"({self.migrated_bytes}, {self.migration_pause_s})"
            )
        if not self.fatal and self.survivors + self.promoted < 1:
            # The invariant every caller relies on: a non-fatal plan
            # always leaves at least one worker holding the job.  An
            # autoscaler asking to drain the last active node must be
            # rejected here, not discovered as a dead cluster later.
            raise ValueError(
                "non-fatal plan must keep >= 1 worker "
                f"(promoted={self.promoted}, survivors={self.survivors})"
            )

    @property
    def restored(self) -> int:
        """Workers active once the migration completes."""
        return self.survivors + self.promoted


@dataclass(frozen=True)
class ReschedulePolicy:
    """How a deployment replaces failed capacity."""

    standby_nodes: int = 0
    """Hot spare nodes held out of the job until a fault promotes them.
    Standbys are *extra* machines: they do not contribute capacity (or
    cost model scaling) until promoted."""
    mode: str = MODE_STANDBY
    """What happens to dead slots beyond the standby pool: ``spread``
    over survivors, or ``none`` (the legacy fail-on-last-worker
    behaviour).  ``standby`` implies ``spread`` for the leftover."""
    detection_timeout_s: float = 2.0
    """Failure-detector delay: transient faults shorter than this are
    never detected, so they never trigger a migration."""
    migration_nic_fraction: float = 0.8
    """Fraction of the receiving nodes' NIC bandwidth available to the
    state migration (the rest keeps serving ingest)."""
    migrate_stragglers: bool = True
    """Replace a detected :class:`~repro.faults.schedule.SlowNode` with
    a standby (capacity restored after the migration) instead of riding
    out the straggler."""

    def __post_init__(self) -> None:
        if self.standby_nodes < 0:
            raise ValueError(
                f"standby_nodes must be >= 0, got {self.standby_nodes}"
            )
        if self.mode not in RESCHEDULE_MODES:
            raise ValueError(
                f"mode must be one of {RESCHEDULE_MODES}, got {self.mode!r}"
            )
        if self.detection_timeout_s < 0:
            raise ValueError(
                "detection_timeout_s must be >= 0, "
                f"got {self.detection_timeout_s}"
            )
        if not 0 < self.migration_nic_fraction <= 1:
            raise ValueError(
                "migration_nic_fraction must be in (0, 1], "
                f"got {self.migration_nic_fraction}"
            )

    # -- planning ----------------------------------------------------------

    def migration_pause_s(
        self, migrated_bytes: float, node: NodeSpec, receivers: int
    ) -> float:
        """Time to move ``migrated_bytes`` onto ``receivers`` nodes' NICs."""
        if migrated_bytes <= 0 or receivers <= 0:
            return 0.0
        bandwidth = (
            receivers * node.nic_bytes_per_s * self.migration_nic_fraction
        )
        return migrated_bytes / bandwidth

    def plan_crash(
        self,
        *,
        kill: int,
        active: int,
        standbys_left: int,
        state_bytes: float,
        node: NodeSpec,
    ) -> ReschedulePlan:
        """Place the slots of ``kill`` dead workers (out of ``active``)."""
        if kill <= 0 or active <= 0:
            raise ValueError(f"need kill > 0 and active > 0, got ({kill}, {active})")
        kill = min(kill, active)
        survivors = active - kill
        promoted = 0
        if self.mode == MODE_STANDBY:
            promoted = min(kill, max(0, standbys_left))
        if survivors + promoted <= 0:
            # No placement target exists; the job is unrecoverable.
            return ReschedulePlan(
                promoted=0,
                survivors=0,
                migrated_bytes=0.0,
                migration_pause_s=0.0,
                fatal=True,
            )
        if self.mode == MODE_NONE:
            # Legacy semantics: survivors keep their own slots, the dead
            # slots are implicitly absorbed at zero modelled cost.
            return ReschedulePlan(
                promoted=0,
                survivors=survivors,
                migrated_bytes=0.0,
                migration_pause_s=0.0,
                fatal=survivors <= 0,
            )
        migrated = max(0.0, state_bytes) * (kill / active)
        pause = self.migration_pause_s(migrated, node, survivors + promoted)
        return ReschedulePlan(
            promoted=promoted,
            survivors=survivors,
            migrated_bytes=migrated,
            migration_pause_s=pause,
            fatal=False,
        )

    def plan_scale_in(
        self,
        *,
        remove: int,
        active: int,
        state_bytes: float,
        node: NodeSpec,
    ) -> ReschedulePlan:
        """Plan a *voluntary* departure of ``remove`` workers.

        Unlike :meth:`plan_crash` the victims are healthy: their keyed
        state is drained onto the survivors over the NIC before the
        slots are released, so nothing is exposed to the delivery
        ledger by the plan itself (engines may still replay or drop
        in-flight work per their own rescale semantics).  Removing the
        last worker is a caller error, never a fatal plan -- an
        autoscaler has no business emptying the cluster.
        """
        if remove <= 0:
            raise ValueError(f"remove must be > 0, got {remove}")
        if remove >= active:
            raise ValueError(
                f"scale-in may not remove the last worker "
                f"(remove={remove}, active={active})"
            )
        survivors = active - remove
        migrated = max(0.0, state_bytes) * (remove / active)
        pause = self.migration_pause_s(migrated, node, survivors)
        return ReschedulePlan(
            promoted=0,
            survivors=survivors,
            migrated_bytes=migrated,
            migration_pause_s=pause,
            fatal=False,
        )

    def plan_straggler(
        self,
        *,
        nodes: int,
        duration_s: float,
        standbys_left: int,
        state_bytes: float,
        active: int,
        node: NodeSpec,
    ) -> ReschedulePlan:
        """Decide whether to replace ``nodes`` stragglers with standbys.

        A straggler is only ever migrated away from when (1) the policy
        opts in, (2) the degradation outlasts the failure detector --
        below ``detection_timeout_s`` the fault clears before anyone
        notices -- and (3) a standby is available.  The plan's
        ``promoted`` count says how many stragglers get replaced;
        ``migration_pause_s`` is when their capacity is clean again
        (measured from detection, not injection).
        """
        no_migration = ReschedulePlan(
            promoted=0,
            survivors=active,
            migrated_bytes=0.0,
            migration_pause_s=0.0,
            fatal=False,
        )
        if not self.migrate_stragglers or self.mode != MODE_STANDBY:
            return no_migration
        # Strictly shorter than the timeout clears before detection; a
        # fault lasting *exactly* detection_timeout_s is detected at the
        # instant it ends and still triggers the migration (the old
        # ``<=`` silently dropped that boundary case).
        if duration_s < self.detection_timeout_s:
            return no_migration
        promoted = min(nodes, max(0, standbys_left))
        if promoted <= 0 or active <= 0:
            return no_migration
        migrated = max(0.0, state_bytes) * (promoted / active)
        pause = self.migration_pause_s(migrated, node, promoted)
        return ReschedulePlan(
            promoted=promoted,
            survivors=active,
            migrated_bytes=migrated,
            migration_pause_s=pause,
            fatal=False,
        )

    def plan_suspect(
        self,
        *,
        active: int,
        standbys_left: int,
        state_bytes: float,
        node: NodeSpec,
    ) -> ReschedulePlan:
        """Plan the eviction of one *suspected* (but possibly healthy)
        worker, on a failure detector's verdict (:mod:`repro.detect`).

        This is the seam that makes detector quality cost real time: the
        scheduler cannot tell a true conviction from a false positive,
        so either way the suspect's partitions are moved -- onto a
        promoted standby when one is available, else spread over the
        survivors (shrinking capacity by one worker).  The migration
        pause is the same NIC-bounded transfer used by crashes and
        rescales; a *spurious* verdict therefore bills the full pause
        for nothing.  Returns a no-op plan (``promoted == 0`` and
        ``survivors == active``) when the policy has nowhere to put the
        suspect's slots: under ``mode="none"``, or in spread mode with
        no survivor left to absorb them.
        """
        if active <= 0:
            raise ValueError(f"active must be > 0, got {active}")
        refuse = ReschedulePlan(
            promoted=0,
            survivors=active,
            migrated_bytes=0.0,
            migration_pause_s=0.0,
            fatal=False,
        )
        if self.mode == MODE_NONE:
            return refuse
        promoted = 0
        if self.mode == MODE_STANDBY:
            promoted = min(1, max(0, standbys_left))
        survivors = active - 1
        receivers = survivors + promoted
        if receivers <= 0:
            # Evicting the last worker with no spare would kill the job
            # on a suspicion; the policy declines instead.
            return refuse
        migrated = max(0.0, state_bytes) * (1.0 / active)
        pause = self.migration_pause_s(migrated, node, receivers)
        return ReschedulePlan(
            promoted=promoted,
            survivors=survivors,
            migrated_bytes=migrated,
            migration_pause_s=pause,
            fatal=False,
        )
