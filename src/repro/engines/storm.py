"""The Apache Storm 1.0.2 model.

Architectural traits reproduced (from the paper's analysis):

- **Tuple-at-a-time spout/bolt pipeline with per-tuple acking**: the
  highest per-event cost of the three engines (Table I: lowest
  throughput together with Spark, ~8% above Spark).
- **Immature on/off backpressure**: "Storm introduced the backpressure
  feature in recent releases; however, it is not mature yet" -- the
  spout pulls in bursts and pauses at the high watermark, giving the
  strongly fluctuating ingest of Figure 9a and, under high load,
  occasional topology stalls ("it is possible that the backpressure
  stalls the topology, causing spouts to stop emitting tuples").
- **Bulk window evaluation**: window results are produced in bulk at
  window close (Experiment 4's discussion), so emission is delayed by an
  evaluation pass over the window volume; combined with coordination
  overhead growing with the cluster, Storm's latency *increases* with
  cluster size (Table II), opposite to Spark.
- **No spill-to-disk window state**: raw tuples are buffered per window;
  large windows exhaust memory unless the user supplies "advanced data
  structures that can spill to disk" (Experiment 3) --
  ``advanced_state=True`` models exactly that user-supplied structure.
- **No built-in windowed join**: the naive join the paper implemented
  (0.14 M/s, 2.3 s average latency on 2 nodes) buffers both sides fully
  and is unstable beyond 2 workers ("we faced memory issues and topology
  stalls on larger clusters").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Union

from repro.autoscale.rescale import STYLE_REBALANCE, RescaleSemantics
from repro.core.batch import (
    RecordBlock,
    consume_front,
    fold_add,
    fold_sub,
    records_weight,
)
from repro.core.records import Record
from repro.engines.backpressure import BackpressureMechanism, OnOffThrottle
from repro.engines.base import (
    EngineConfig,
    StreamingEngine,
    windowed_conservation,
)
from repro.engines.operators.aggregate import aggregation_outputs
from repro.engines.operators.columnar import (
    ColumnarJoinStore,
    ColumnarWindowStore,
)
from repro.engines.operators.join import JoinWindowStore, join_window_outputs
from repro.engines.operators.window import KeyedWindowStore
from repro.faults.checkpoint import RecoverySemantics
from repro.faults.guarantees import DeliveryGuarantee
from repro.sim.failures import TopologyStalled
from repro.workloads.queries import WindowedJoinQuery


@dataclass(frozen=True)
class StormConfig(EngineConfig):
    """Storm-specific knobs on top of the common engine config.

    The inherited fields are re-declared with Storm's tuned defaults so
    partial overrides (e.g. ``StormConfig(advanced_state=True)``) keep
    the engine's characteristics.
    """

    tick_interval_s: float = 0.05
    buffer_seconds: float = 1.0
    pipeline_delay_s: float = 0.08
    gc_rate_per_s: float = 0.03
    gc_pause_mean_s: float = 0.45
    gc_pause_sigma: float = 0.6
    emit_jitter_sigma: float = 0.35
    burst_factor: float = 1.5
    """Spout pull rate relative to processing capacity while emitting."""
    spout_pull_period_ticks: int = 6
    """The spout polls the queues every this many engine ticks, pulling
    the accumulated budget in one burst -- the strongly fluctuating data
    pull rate of Figure 9a."""
    high_watermark: float = 0.9
    low_watermark: float = 0.4
    coordination_delay_base_s: float = 0.4
    """Mean extra emission delay at 2 workers; grows linearly with
    workers/2 (worker/executor coordination, Table II's latency growth
    with cluster size)."""
    stall_rate_per_s: float = 0.02
    """Topology-stall hazard per second while the internal queues are
    more than half full."""
    stall_duration_s: float = 2.5
    """Base stall length at 2 workers; actual stalls scale with
    sqrt(workers/2) -- more executors, longer recovery coordination."""
    surge_factor: float = 2.5
    """An ingest-rate jump beyond this multiple of the smoothed rate is a
    surge; Storm's immature backpressure risks stalling the topology on
    surges (Experiment 5: "Storm is the most susceptible system for
    fluctuating workloads")."""
    surge_stall_prob: float = 0.6
    surge_cooldown_s: float = 60.0
    surge_min_rate: float = 1e4
    """Surges below this absolute rate never stall (startup noise)."""
    emit_jitter_per_worker: float = 0.05
    """Extra lognormal sigma on window-evaluation time per worker above
    two: coordination across more executors makes the occasional window
    evaluation much slower, which is where Storm's latency maxima
    (5.7 s at 2 nodes to 17.7 s at 8 nodes in Table II) come from."""
    advanced_state: bool = False
    """User-supplied spillable window state (Experiment 3's workaround)."""
    naive_join_stable_workers: int = 2
    """The naive join is only stable up to this many workers."""


class StormEngine(StreamingEngine):
    """Tuple-at-a-time engine with on/off backpressure."""

    name = "storm"
    # Topology rebalance + tuple replay; the naive (no-acking) setup is
    # at-most-once: the dead workers' window state is simply gone.
    recovery_semantics = RecoverySemantics.TUPLE_REPLAY
    default_guarantee = DeliveryGuarantee.AT_MOST_ONCE
    # Rescale = `storm rebalance`: an in-flight executor redistribution
    # with a brief topology halt.  Without acking the moved partitions'
    # un-acked window contents are dropped (at-most-once).
    rescale = RescaleSemantics(
        style=STYLE_REBALANCE, provision_s=15.0, warmup_s=2.0
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not isinstance(self.config, StormConfig):
            self.config = StormConfig(**vars(self.config))  # type: ignore[arg-type]
        cfg: StormConfig = self.config
        self._backpressure_mechanism = OnOffThrottle(
            high_watermark=cfg.high_watermark,
            low_watermark=cfg.low_watermark,
            burst_factor=cfg.burst_factor,
            stall_rng=self.rng,
            stall_rate_per_s=cfg.stall_rate_per_s * self.cluster.workers / 2.0,
            stall_duration_s=cfg.stall_duration_s
            * (self.cluster.workers / 2.0) ** 0.5,
        )
        self._is_join = isinstance(self.query, WindowedJoinQuery)
        self._store: Union[JoinWindowStore, KeyedWindowStore]
        hint = self.query.keys.num_keys
        if self._is_join:
            self._store = (
                ColumnarJoinStore(self.query.window, hint)
                if self._vector
                else JoinWindowStore(self.query.window)
            )
        else:
            self._store = (
                ColumnarWindowStore(self.query.window, hint)
                if self._vector
                else KeyedWindowStore(self.query.window)
            )
        self._inflight: Deque[Union[Record, RecordBlock]] = deque()
        self._inflight_weight = 0.0
        # Per-pull (tick) minima of event time, with remaining weight:
        # pulls interleave the driver queues round-robin, so the FIFO
        # head alone does not bound the oldest inflight event time.
        self._inflight_tick_mins: Deque[List[float]] = deque()
        self._tick_counter = 0
        self._pull_budget_banked = 0.0
        self._ingest_rate_ema = 0.0
        self._surge_cooldown_until = 0.0
        self.windows_emitted = 0
        self._advanced_state = cfg.advanced_state
        # The user-supplied spillable structure changes the state policy.
        if self._advanced_state:
            self.state.set_policy(replace(self.state.policy, can_spill=True))

    @classmethod
    def default_config(cls) -> "StormConfig":
        return StormConfig()

    @classmethod
    def supports_spill(cls) -> bool:
        # Experiment 3: "Otherwise, we encountered memory exceptions."
        return False

    @classmethod
    def recommended_degradation(cls):
        # At-most-once without acking: dropped tuples are already part
        # of the contract, so shed aggressively (tight delay bound) and
        # re-admit quickly -- Storm's on/off throttle oscillates anyway.
        from repro.recovery.degradation import DegradationPolicy

        return DegradationPolicy(
            shed="oldest", max_queue_delay_s=3.0, readmission_ramp_s=1.0
        )

    def _backpressure(self) -> BackpressureMechanism:
        return self._backpressure_mechanism

    def _emit_jitter(self) -> float:
        cfg: StormConfig = self.config
        sigma = cfg.emit_jitter_sigma + cfg.emit_jitter_per_worker * max(
            0, self.cluster.workers - 2
        )
        if sigma <= 0:
            return 1.0
        return float(self.rng.lognormal(-(sigma**2) / 2.0, sigma))

    def _internal_backlog_weight(self) -> float:
        return self._inflight_weight

    def _modulate_ingest_budget(self, budget: float, dt: float) -> float:
        # The spout polls in bursts: budget banks up between polls and
        # is released all at once -- Figure 9a's fluctuating pull rate.
        cfg: StormConfig = self.config
        period = max(1, cfg.spout_pull_period_ticks)
        self._tick_counter += 1
        self._pull_budget_banked += budget
        if self._tick_counter % period != 0:
            return 0.0
        released = self._pull_budget_banked
        self._pull_budget_banked = 0.0
        return released

    def _on_node_failure(self, lost_fraction: float) -> float:
        # The exposed data is the dead workers' partition of every open
        # window.  Without acking (at-most-once, the naive default) it is
        # physically dropped from the store; with acking the spout
        # replays it, so the store keeps it but the replay duplicates
        # (at-least-once) or deduplicates (exactly-once) downstream.
        if self.guarantee is DeliveryGuarantee.AT_MOST_ONCE:
            return self._store.lose_fraction(lost_fraction)
        return lost_fraction * (
            self._store.stored_weight() + self._inflight_weight
        )

    def _rescale_exposed_weight(self, moved_fraction: float) -> float:
        # An in-flight rebalance moves executors without a snapshot:
        # exactly the crash exposure, but for the *moved* partitions --
        # dropped from the store under at-most-once (the window ledger
        # charges it to `lost`), replayed-and-duplicated under acking.
        return self._on_node_failure(moved_fraction)

    # -- pipeline ---------------------------------------------------------

    def _process(self, records: List[Record], dt: float) -> None:
        # The spout over-pulls into the executor queues; bolts drain them
        # at processing capacity in _on_tick_end.  Pulls arrive in
        # periodic bursts, so the surge detector sees the per-poll
        # average rate, not the instantaneous burst.
        cfg: StormConfig = self.config
        period = max(1, cfg.spout_pull_period_ticks)
        weight = sum(r.weight for r in records)
        self._detect_surge(weight / (dt * period), dt * period)
        if records:
            self._inflight_tick_mins.append(
                [min(r.event_time for r in records), weight]
            )
        for record in records:
            self._inflight.append(record)
            self._inflight_weight += record.weight

    def _process_batch(self, blocks: List[RecordBlock], dt: float) -> None:
        # Columnar twin of _process: one tick-min entry per poll, the
        # inflight ledger advanced by strict left folds over each
        # block's cohort weights (bitwise == the per-record loop; each
        # block's minimum event time is its uniform event time).
        cfg: StormConfig = self.config
        period = max(1, cfg.spout_pull_period_ticks)
        weight = records_weight(blocks)
        self._detect_surge(weight / (dt * period), dt * period)
        if blocks:
            self._inflight_tick_mins.append(
                [min(b.event_time for b in blocks), weight]
            )
        for block in blocks:
            self._inflight.append(block)
            self._inflight_weight = fold_add(
                self._inflight_weight, block.weights
            )

    def _detect_surge(self, rate: float, dt: float) -> None:
        """A sudden ingest surge may stall the topology (Experiment 5)."""
        cfg: StormConfig = self.config
        if self._ingest_rate_ema <= 0:
            self._ingest_rate_ema = rate
            return
        surging = (
            rate > cfg.surge_factor * self._ingest_rate_ema
            and rate > cfg.surge_min_rate
            and self.sim.now >= self._surge_cooldown_until
        )
        if surging and self.rng.random() < cfg.surge_stall_prob:
            # Surge-induced stalls are the severe case: the topology
            # wedges while re-balancing to the new rate.
            self._backpressure_mechanism.force_stall(
                2.0
                * cfg.stall_duration_s
                * (self.cluster.workers / 2.0) ** 0.5
            )
            self._surge_cooldown_until = self.sim.now + cfg.surge_cooldown_s
            # The stall flushes the smoothed estimate: on resume the
            # spout re-learns the new rate instead of chain-stalling.
            self._ingest_rate_ema = rate
            return
        # ~3 s time constant on the smoothed pull rate.
        alpha = min(1.0, dt / 3.0)
        self._ingest_rate_ema += alpha * (rate - self._ingest_rate_ema)

    def _drain_inflight(self, dt: float) -> None:
        budget = self._capacity_events_per_s() * dt
        while self._inflight and budget > 1e-9:
            head = self._inflight[0]
            if isinstance(head, RecordBlock):
                taken, budget_after, emptied = consume_front(head, budget)
                if emptied:
                    self._inflight.popleft()
                if taken is None or len(taken) == 0:
                    budget = budget_after
                    continue
                self._inflight_weight = fold_sub(
                    self._inflight_weight, taken.weights
                )
                budget = budget_after
                # The tick-min countdown's epsilon merges are not
                # vectorizable bitwise; replay them per cohort (cheap:
                # one call per cohort against a short deque).
                for w in taken.weights.tolist():
                    self._consume_tick_min(w)
                self._store.add_block(taken)
                continue
            if head.weight <= budget:
                self._inflight.popleft()
                taken = head
            else:
                taken = Record(
                    key=head.key,
                    value=head.value,
                    event_time=head.event_time,
                    weight=budget,
                    stream=head.stream,
                    ingest_time=head.ingest_time,
                    # A trace rides the first drained part of its cohort
                    # (same convention as split_cohort / queue splits).
                    trace=head.trace,
                )
                head.trace = None
                head.weight -= budget
            self._inflight_weight -= taken.weight
            budget -= taken.weight
            self._consume_tick_min(taken.weight)
            self._store.add(taken)
        self._inflight_weight = max(0.0, self._inflight_weight)

    def _consume_tick_min(self, weight: float) -> None:
        while weight > 1e-9 and self._inflight_tick_mins:
            entry = self._inflight_tick_mins[0]
            if entry[1] > weight + 1e-9:
                entry[1] -= weight
                return
            weight -= entry[1]
            self._inflight_tick_mins.popleft()

    def _on_tick_end(self, dt: float) -> None:
        assert self.source is not None
        self._drain_inflight(dt)
        self._update_state_usage(
            self._store.stored_weight() + self._inflight_weight
        )
        self._check_naive_join_health()
        watermark = (
            self._processed_watermark() - self.config.allowed_lateness_s
        )
        for index in self._store.ready_indices(watermark):
            self._close_window(index)

    def _processed_watermark(self) -> float:
        """Event-time through which tuples reached the window bolt.

        The source watermark, bounded by the oldest event time that may
        still sit in the executor queues (tracked per pull tick): a
        window may only close when no older tuple is inflight.
        """
        assert self.source is not None
        watermark = self.source.watermark
        if self._inflight_tick_mins:
            oldest = min(entry[0] for entry in self._inflight_tick_mins)
            watermark = min(watermark, oldest - 1e-9)
        return watermark

    def _close_window(self, index: int) -> None:
        cfg: StormConfig = self.config
        closed = self._store.close(index, at_time=self.sim.now)
        stored = closed.total_weight
        bulk = self.cost.bulk_emit_delay_s(stored, self.cluster)
        coordination = cfg.coordination_delay_base_s * (
            self.cluster.workers / 2.0
        )
        base_delay = cfg.pipeline_delay_s
        spread = (bulk + coordination) * self._emit_jitter()
        # The bulk evaluation streams results out as it scans the window:
        # the first keys are emitted almost immediately, the last after
        # the full pass -- which is why Storm's minimum latencies in
        # Table II are near zero while the average carries the bulk cost.
        if self._is_join:
            probe_outputs = join_window_outputs(
                closed, self.query.selectivity, emit_time=0.0
            )
        else:
            probe_outputs = aggregation_outputs(closed, emit_time=0.0)
        self.windows_emitted += 1
        self._update_state_usage(
            self._store.stored_weight() + self._inflight_weight
        )
        n = len(probe_outputs)
        for i, output in enumerate(probe_outputs):
            delay = base_delay + spread * (i + 1) / max(n, 1)
            output.emit_time = self.sim.now + delay
            self.sim.schedule(delay, self._emit, [output])

    def _emit(self, outputs) -> None:
        assert self.sink is not None
        weight = sum(o.weight for o in outputs)
        self._account_emission(weight)
        self.sink.emit(outputs, self._result_bytes_per_output_weight)

    def _check_naive_join_health(self) -> None:
        """Experiment 2: the naive join is unstable beyond 2 workers."""
        cfg: StormConfig = self.config
        if not self._is_join:
            return
        if self.cluster.workers <= cfg.naive_join_stable_workers:
            return
        # On larger clusters the per-worker imbalance of the naive join
        # stalls the topology once meaningful state accumulates.
        if self.state.utilisation() > 0.02:
            raise TopologyStalled(
                f"naive Storm join unstable on {self.cluster.workers} workers "
                "(memory issues and topology stalls, paper Experiment 2)",
                at_time=self.sim.now,
            )

    def conservation(self) -> Dict[str, float]:
        # Spout-pulled tuples wait in the executor queues (inflight)
        # before the bolt folds them into window state.
        ledger = super().conservation()
        ledger.update(
            windowed_conservation(self._store, staged=self._inflight_weight)
        )
        return ledger

    def diagnostics(self) -> Dict[str, float]:
        diag = super().diagnostics()
        diag["windows_emitted"] = float(self.windows_emitted)
        diag["inflight_weight"] = self._inflight_weight
        diag["stall_count"] = float(self._backpressure_mechanism.stall_count)
        if isinstance(self._store, KeyedWindowStore):
            diag["late_dropped_weight"] = self._store.dropped_weight
        else:
            diag["late_dropped_weight"] = (
                self._store.purchases.dropped_weight
                + self._store.ads.dropped_weight
            )
        return diag
