"""The generic engine interface and shared execution machinery.

The paper's future work calls for "a generic interface that users can
plug into any stream data processing system, in order to facilitate and
simplify benchmark SDPSs".  :class:`StreamingEngine` is that interface:
the driver only ever sees ``start`` / ``stop``, the failure flag, and
diagnostics -- every measurement happens outside the engine, at the
queues and the sink.

Shared machinery implemented here:

- the engine tick: every ``tick_interval_s`` the engine asks its
  backpressure mechanism for an ingest budget, converts it to bytes,
  asks the data plane for a grant (this is where network saturation
  binds), pulls records from the driver queues through the
  :class:`~repro.engines.operators.source.SourceSet`, and hands them to
  the engine-specific ``_process``;
- JVM pause modelling (a seeded Poisson process of lognormal pauses)
  that suspends ingest and processing -- the source of the latency tails
  in Tables II/IV;
- CPU and network accounting into the resource monitor (Figure 10);
- state accounting against the engine's :class:`StateBackend`
  (Experiments 3 and 4).

Subclasses implement ``_capacity_events_per_s`` (usually delegated to
the calibrated cost model), ``_process`` (windowing pipeline), and
``_on_tick_end`` (window closing / job scheduling).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

import numpy as np

from repro.autoscale.rescale import (
    STYLE_MICRO_BATCH,
    STYLE_REPARTITION,
    STYLE_SAVEPOINT,
    RescaleSemantics,
)
from repro.core.batch import (
    RecordBlock,
    materialize_all,
    records_weight,
    vector_enabled,
)
from repro.core.queues import QueueSet
from repro.core.records import PURCHASES, Record
from repro.engines.backpressure import BackpressureMechanism
from repro.engines.calibration import CostModel, cost_model_for
from repro.engines.operators.sink import Sink
from repro.engines.operators.source import SourceSet
from repro.engines.state import StateBackend, StatePolicy
from repro.obs.context import ObsContext
from repro.recovery.degradation import DegradationPolicy
from repro.recovery.reschedule import (
    MODE_NONE,
    MODE_STANDBY,
    ReschedulePolicy,
)
from repro.faults.checkpoint import CheckpointSpec, RecoverySemantics
from repro.faults.guarantees import DeliveryGuarantee, GuaranteeAccounting
from repro.faults.schedule import (
    AsymmetricPartition,
    DegradingNode,
    FaultEvent,
    FlappingNode,
    NetworkPartition,
    NodeCrash,
    ProcessRestart,
    QueueDisconnect,
    SlowNode,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.failures import SutFailure
from repro.sim.network import DataPlane
from repro.sim.resources import ResourceMonitor
from repro.sim.simulator import PeriodicProcess, Simulator
from repro.workloads.events import (
    AGG_RESULT_BYTES,
    JOIN_RESULT_BYTES,
    event_bytes,
)
from repro.workloads.queries import Query, WindowedJoinQuery


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs common to all engines (Section VI-A: "Tuning the
    engines' configuration parameters is important to get a good
    performance for every system")."""

    tick_interval_s: float = 0.05
    buffer_seconds: float = 1.0
    """Internal buffer capacity expressed in seconds of processing
    capacity -- the paper's "buffer size" knob: small buffers lower
    processing-time latency but push queueing into the driver queues."""
    pipeline_delay_s: float = 0.05
    """Source-to-sink latency of an unloaded pipeline (serialization,
    hops)."""
    gc_rate_per_s: float = 0.02
    gc_pause_mean_s: float = 0.3
    gc_pause_sigma: float = 0.5
    """JVM pause process: Poisson arrivals, lognormal durations."""
    heap_fraction: float = 0.4
    emit_jitter_sigma: float = 0.0
    """Lognormal sigma of multiplicative jitter on window-emission
    delays (coordination noise; grows with cluster size for Storm)."""
    allowed_lateness_s: float = 0.0
    """Hold windows open this long past the watermark to admit
    out-of-order stragglers (the paper's future-work extension; honoured
    by the engines' window-close conditions).  Zero reproduces the
    paper's in-order setup exactly."""
    recovery_pause_s: Optional[float] = None
    """Explicit override of the processing outage after a worker-node
    failure.  ``None`` (the default) derives the pause from the trial's
    checkpoint model -- state bytes, checkpoint interval, NIC restore
    bandwidth, and the engine's :class:`RecoverySemantics` -- instead of
    a hardcoded constant (see :mod:`repro.faults.checkpoint`)."""

    def with_overrides(self, **kwargs) -> "EngineConfig":
        return replace(self, **kwargs)


class StreamingEngine(ABC):
    """Abstract system under test.

    Lifecycle: construct -> ``start(queues, sink)`` -> (simulator runs;
    the engine ticks itself) -> ``stop()``.  A failure during the run
    (connection drop is raised at the queue; stalls and OOM inside the
    engine) sets :attr:`failure` and freezes the engine, and the driver
    reports the trial as failed.
    """

    name = "abstract"
    recovery_semantics = RecoverySemantics.CHECKPOINT_RESTORE
    """How this engine reconstructs state after losing a worker (drives
    the derived recovery pause, see :mod:`repro.faults.checkpoint`)."""
    default_guarantee = DeliveryGuarantee.EXACTLY_ONCE
    """Delivery guarantee in the engine's paper configuration; a trial
    can override it via ``CheckpointSpec(guarantee=...)``."""
    rescale = RescaleSemantics()
    """How this engine executes an elastic rescale (style of the cutover
    pause, provisioning lead time); engines override with their own
    semantics -- see :mod:`repro.autoscale.rescale`."""

    def __init__(
        self,
        sim: Simulator,
        cluster: ClusterSpec,
        query: Query,
        plane: DataPlane,
        rng: np.random.Generator,
        resources: Optional[ResourceMonitor] = None,
        config: Optional[EngineConfig] = None,
        checkpoint: Optional[CheckpointSpec] = None,
        obs: Optional["ObsContext"] = None,
        reschedule: Optional[ReschedulePolicy] = None,
        degradation: Optional[DegradationPolicy] = None,
    ) -> None:
        self.sim = sim
        self.obs = obs
        self.cluster = cluster
        self.query = query
        self.plane = plane
        self.rng = rng
        self.resources = resources
        self.config = config or self.default_config()
        self.cost: CostModel = self._resolve_cost_model()
        self.state = StateBackend(
            cluster,
            StatePolicy(
                can_spill=self.supports_spill(),
                heap_fraction=self.config.heap_fraction,
            ),
        )
        self.sink: Optional[Sink] = None
        self.source: Optional[SourceSet] = None
        # Columnar (block-at-a-time) hot path; REPRO_ENGINE_SCALAR=1
        # selects the record-at-a-time reference implementation.  The
        # mode is latched at construction so a trial runs uniformly.
        self._vector = vector_enabled()
        self.failure: Optional[SutFailure] = None
        self.ingested_weight = 0.0
        self._active_workers = cluster.workers
        self.state_lost_weight = 0.0
        self.checkpoint = checkpoint or CheckpointSpec()
        self._checkpoint_active = checkpoint is not None
        self.guarantee = (
            self.checkpoint.guarantee
            if self.checkpoint.guarantee is not None
            else self.default_guarantee
        )
        self.guarantees = GuaranteeAccounting(self.guarantee)
        self.fault_log: List[Dict[str, float]] = []
        # Recovery policies.  With no explicit policy and no standbys the
        # defaults reproduce the legacy PR 2 behaviour exactly: capacity
        # lost to a crash stays lost and killing the last worker is
        # fatal.  Provisioning standbys (ClusterSpec.standby or the
        # policy's own pool) switches the default to standby promotion.
        if reschedule is None:
            reschedule = ReschedulePolicy(
                standby_nodes=cluster.standby,
                mode=MODE_STANDBY if cluster.standby > 0 else MODE_NONE,
            )
        self.reschedule = reschedule
        # Spare machines may be declared on the cluster spec or on the
        # policy; the engine's live pool honours the larger claim.
        self._standbys_available = max(
            cluster.standby, reschedule.standby_nodes
        )
        self.standbys_promoted = 0
        self.degradation = degradation or self.default_degradation()
        self.shed_weight = 0.0
        self._ramp_from_s = -1.0
        self._dead_workers = 0
        self._slow_events: List[tuple] = []
        self._partition_until = -1.0
        self._last_checkpoint_s = 0.0
        self._ckpt_ingested_weight = 0.0
        self._checkpoints_completed = 0
        self._checkpoint_pause_total = 0.0
        self._recovery_pause_total = 0.0
        self._checkpoint_process: Optional[PeriodicProcess] = None
        self._tick_process: Optional[PeriodicProcess] = None
        self._paused_until = -1.0
        self.rescale_log: List[Dict[str, Any]] = []
        """One entry per elastic rescale event (decision, cutover, and
        completion fields are filled in as the event progresses)."""
        self._provisioning = 0
        self._retiring = 0
        self._rescale_busy_until = -1.0
        self._migration_until = -1.0
        self._rescale_pause_total = 0.0
        self._gray_abandoned: set = set()
        self._suspect_pause_total = 0.0
        self._suspect_migrations = 0
        self._hot_fraction = query.keys.hot_fraction()
        self._ingest_bytes_per_event = self._mean_event_bytes()
        self._result_bytes_per_output_weight = (
            JOIN_RESULT_BYTES
            if isinstance(query, WindowedJoinQuery)
            else AGG_RESULT_BYTES
        )
        self._last_state_bytes = 0.0

    # -- configuration hooks -------------------------------------------------

    @classmethod
    def default_config(cls) -> EngineConfig:
        return EngineConfig()

    @classmethod
    def default_degradation(cls) -> DegradationPolicy:
        """The engine's degradation behaviour when none is supplied.

        The base default is inert (no shedding, step re-admission) so
        plain trials keep the paper's binary failure rule; engines
        override :meth:`recommended_degradation` with their flavoured
        graceful-degradation settings, opted into by the chaos harness
        and the ``--shed`` CLI knobs.
        """
        return DegradationPolicy()

    @classmethod
    def recommended_degradation(cls) -> DegradationPolicy:
        """A sensible graceful-degradation configuration for this
        engine -- what a production deployment of it would run with.
        Engines tune the ramp to their scheduling granularity."""
        return DegradationPolicy(
            shed="oldest", max_queue_delay_s=5.0, readmission_ramp_s=2.0
        )

    def _resolve_cost_model(self) -> CostModel:
        """Look up this engine's performance characterisation.

        Custom engines (the paper's pluggable-SUT future work) either
        register a model via
        :func:`repro.engines.calibration.register_cost_model` or
        override this hook to return one directly.
        """
        return cost_model_for(self.name, self.query.kind)

    @classmethod
    def supports_spill(cls) -> bool:
        """Whether operator state can spill to disk (Experiment 3)."""
        return True

    @abstractmethod
    def _backpressure(self) -> BackpressureMechanism:
        """The engine's flow-control mechanism."""

    # -- lifecycle ------------------------------------------------------------

    def start(self, queues: QueueSet, sink: Sink) -> None:
        if self._tick_process is not None:
            raise RuntimeError(f"{self.name} engine already started")
        self.source = SourceSet(queues)
        self.sink = sink
        self._tick_process = self.sim.every(
            self.config.tick_interval_s, self._tick, start=self.sim.now
        )
        self._last_checkpoint_s = self.sim.now
        self._checkpoint_process = self.sim.every(
            self.checkpoint.interval_s,
            self._checkpoint_tick,
            start=self.sim.now + self.checkpoint.interval_s,
        )
        if self.obs is not None:
            self._bind_obs_gauges(self.obs.registry)

    def stop(self) -> None:
        if self._tick_process is not None:
            self._tick_process.stop()
            self._tick_process = None
        if self._checkpoint_process is not None:
            self._checkpoint_process.stop()
            self._checkpoint_process = None

    @property
    def failed(self) -> bool:
        return self.failure is not None

    # -- capacity -------------------------------------------------------------

    def _capacity_events_per_s(self) -> float:
        """Current CPU-bound ingest capacity (events/s).

        Applies the calibrated cost model, the key-skew slot bound
        (Experiment 4), and the state-pressure multiplier (spilling
        slows processing, Experiment 3).
        """
        base = self.cost.skew_capacity_events_per_s(
            self.cluster, self._hot_fraction
        )
        base *= self._active_workers / self.cluster.workers
        base *= self._slow_multiplier()
        return base / self.state.cost_multiplier

    def _slow_multiplier(self) -> float:
        """Capacity multiplier from live slow-node (straggler) faults."""
        if not self._slow_events:
            return 1.0
        now = self.sim.now
        live = [(until, m) for until, m in self._slow_events if now < until]
        self._slow_events = live
        multiplier = 1.0
        for _, m in live:
            multiplier *= m
        return multiplier

    def _mean_event_bytes(self) -> float:
        sizes = [event_bytes(stream) for stream in self.query.streams]
        return sum(sizes) / len(sizes)

    # -- the tick ------------------------------------------------------------

    def _tick(self, sim: Simulator) -> None:
        if self.failed:
            return
        dt = self.config.tick_interval_s
        try:
            if self._in_gc_pause(sim.now, dt):
                # The JVM is stopped: no ingest, no processing, no window
                # evaluation this tick.  The flow-control clock still
                # advances -- stall/off windows elapse in simulated time,
                # not in ticks-that-ran (the stall-accounting drift bug).
                self._backpressure().on_tick_end(sim.now)
                return
            capacity = self._capacity_events_per_s()
            assert self.source is not None
            if self.degradation.sheds:
                # Bounded-latency load shedding: before pulling, drop
                # queue backlog beyond what current capacity clears
                # within the policy's delay bound.  The shed weight
                # leaves through the driver queues' shed ledger -- it is
                # never ingested, so processing-side conservation is
                # untouched.
                excess = self.degradation.shed_excess(
                    self.source.backlog_weight, capacity
                )
                if excess > 0:
                    self.shed_weight += self.source.shed(
                        excess, drop_oldest=self.degradation.drop_oldest
                    )
            budget = self._backpressure().ingest_budget(
                dt=dt,
                capacity_events_per_s=capacity,
                buffered_events=self._internal_backlog_weight(),
                buffer_capacity_events=max(
                    capacity * self.config.buffer_seconds, 1.0
                ),
            )
            # Post-recovery admission control: re-admit ingest along the
            # policy's ramp instead of a step (1.0 outside a ramp).
            budget *= self.degradation.admission_fraction(
                sim.now, self._ramp_from_s
            )
            budget = self._modulate_ingest_budget(budget, dt)
            if sim.now < self._partition_until:
                # Network partition between queues and workers: no new
                # ingest, but buffered data keeps processing.
                budget = 0.0
            budget = self._apply_network_grant(budget)
            if budget > 0:
                if self._vector:
                    blocks = self.source.pull_batch(budget, ingest_time=sim.now)
                    if blocks:
                        self._account_ingest(blocks, dt)
                        self._process_batch(blocks, dt)
                else:
                    records = self.source.pull(budget, ingest_time=sim.now)
                    if records:
                        self._account_ingest(records, dt)
                        self._process(records, dt)
            self._on_tick_end(dt)
            self._backpressure().on_tick_end(sim.now)
        except SutFailure as failure:
            self._fail(failure)

    def _fail(self, failure: SutFailure) -> None:
        if self.failure is None:
            self.failure = failure
        self.stop()

    def _apply_network_grant(self, budget_events: float) -> float:
        """Convert the ingest budget to bytes and ask the data plane.

        This is where Flink's aggregation throughput flattens at
        ~1.2 M events/s: CPU would allow more, the wire does not.
        """
        if budget_events <= 0:
            return 0.0
        wanted_bytes = budget_events * self._ingest_bytes_per_event
        granted_bytes = self.plane.allocate(wanted_bytes, kind="ingest")
        return granted_bytes / self._ingest_bytes_per_event

    def _account_ingest(self, records: List, dt: float) -> None:
        if self._vector:
            # Strict left fold over the cohort sequence: bitwise equal
            # to the scalar sum below over the expanded records.
            weight = records_weight(records)
        else:
            weight = sum(r.weight for r in records)
        self.ingested_weight += weight
        if self.resources is not None:
            core_seconds = weight * self.cost.total_cost_us / 1e6
            self.resources.add_cpu(core_seconds)
            self.resources.add_network(weight * self._ingest_bytes_per_event)

    def _account_emission(self, output_weight: float) -> None:
        if output_weight <= 0:
            return
        result_bytes = output_weight * self._result_bytes_per_output_weight
        self.plane.allocate(result_bytes, kind="result")
        if self.resources is not None:
            self.resources.add_network(result_bytes)

    def _update_state_usage(self, stored_weight: float) -> None:
        """Reconcile the state backend with the current buffered volume."""
        target = stored_weight * self.cost.state_bytes_per_event
        delta = target - self._last_state_bytes
        if delta > 0:
            self.state.charge(delta, at_time=self.sim.now)
        elif delta < 0:
            self.state.release(-delta)
        self._last_state_bytes = target

    # -- checkpointing ----------------------------------------------------------

    def _checkpoint_tick(self, sim: Simulator) -> None:
        """Complete one checkpoint: snapshot the replay frontier and --
        when the trial opted into the fault-tolerance model -- pause the
        pipeline for the checkpoint's synchronous part.

        The bookkeeping (replay frontier) always runs so that replay
        spans stay bounded by the interval even for engines constructed
        without an explicit :class:`CheckpointSpec`; only the pause is
        gated, keeping non-fault trials' numerics untouched.
        """
        if self.failed:
            return
        self._last_checkpoint_s = sim.now
        self._ckpt_ingested_weight = self.ingested_weight
        if (
            self._checkpoint_active
            and self.recovery_semantics is RecoverySemantics.CHECKPOINT_RESTORE
        ):
            self._checkpoints_completed += 1
            pause = self.checkpoint.sync_pause_s(self.state.used_bytes)
            self._checkpoint_pause_total += pause
            self._paused_until = max(self._paused_until, sim.now + pause)

    # -- fault injection --------------------------------------------------------

    def inject_fault(self, event: FaultEvent) -> None:
        """Apply one scheduled fault event to the running engine.

        Dispatches on the event type; every application appends an entry
        to :attr:`fault_log` (kind, time, derived pause, guarantee
        accounting) that the driver-side recovery metrology consumes.
        """
        if self.failed:
            return
        if isinstance(event, NodeCrash):
            self._apply_crash(event.nodes)
        elif isinstance(event, ProcessRestart):
            self._apply_restart(event.nodes)
        elif isinstance(event, SlowNode):
            self._apply_slow(event.nodes, event.factor, event.duration_s)
        elif isinstance(event, NetworkPartition):
            self._apply_partition(event.duration_s)
        elif isinstance(event, QueueDisconnect):
            self._apply_disconnect(event.queue_index, event.duration_s)
        elif isinstance(event, FlappingNode):
            self._apply_flap(event)
        elif isinstance(event, DegradingNode):
            self._apply_degrade(event)
        elif isinstance(event, AsymmetricPartition):
            self._apply_asympart(event)
        else:  # pragma: no cover - schedule validation prevents this
            raise TypeError(f"unknown fault event {type(event).__name__}")

    def inject_node_failure(self, nodes: int = 1) -> None:
        """Kill ``nodes`` workers now (back-compat entry point; new code
        schedules a :class:`~repro.faults.schedule.NodeCrash`)."""
        self._apply_crash(nodes)

    def _apply_crash(self, nodes: int) -> None:
        """Lose ``nodes`` workers: the engine's :class:`ReschedulePolicy`
        decides where their operator slots land (standby promotion,
        spreading over survivors, or -- the legacy policy -- nowhere),
        the engine pauses for the derived recovery time plus any state
        migration, and the delivery guarantee decides the fate of the
        exposed data.  Losing the last placement target (no survivors
        and no standbys) is the one unrecoverable outcome."""
        if self.failed or nodes <= 0:
            return
        active = self._active_workers
        kill = min(nodes, active)
        plan = self.reschedule.plan_crash(
            kill=kill,
            active=active,
            standbys_left=self._standbys_available,
            state_bytes=self.state.used_bytes,
            node=self.cluster.node,
        )
        if plan.fatal:
            # No survivors and no standbys: the trial fails -- but the
            # fatal fault is accounted and logged FIRST so the failed
            # TrialResult keeps its diagnostics (guarantee accounting,
            # recovery counters) instead of losing the fault entirely.
            exposed = self._on_node_failure(1.0)
            lost, dup = self.guarantees.on_fault(max(0.0, exposed))
            self.state_lost_weight += lost
            self._dead_workers += kill
            self._active_workers = 0
            self._log_fault(
                "crash",
                pause_s=0.0,
                detection_s=self.checkpoint.detection_timeout_s,
                exposed_weight=max(0.0, exposed),
                lost_weight=lost,
                duplicated_weight=dup,
                fatal=1.0,
            )
            self._fail(
                SutFailure(
                    f"{self.name}: node crash killed all "
                    f"{active} remaining workers and the "
                    f"{self.reschedule.mode!r} reschedule policy has no "
                    "standby to promote",
                    at_time=self.sim.now,
                )
            )
            return
        lost_fraction = kill / active
        self._active_workers -= kill
        self._dead_workers += kill
        exposed = self._on_node_failure(lost_fraction)
        lost, dup = self.guarantees.on_fault(max(0.0, exposed))
        self.state_lost_weight += lost
        pause = self._recovery_pause_s(lost_fraction) + plan.migration_pause_s
        self._pause_for_recovery(pause)
        extra: Dict[str, float] = {}
        if plan.promoted:
            # Promotion completes when the pause (restore + migration)
            # ends; until then the standby is warming up and contributes
            # no capacity.
            self._standbys_available -= plan.promoted
            self.sim.schedule(pause, self._promote_standbys, plan.promoted)
            extra["promoted"] = float(plan.promoted)
        if plan.migrated_bytes > 0:
            extra["migrated_bytes"] = plan.migrated_bytes
            extra["migration_s"] = plan.migration_pause_s
        self._log_fault(
            "crash",
            pause_s=pause,
            detection_s=self.checkpoint.detection_timeout_s,
            exposed_weight=max(0.0, exposed),
            lost_weight=lost,
            duplicated_weight=dup,
            **extra,
        )

    def _apply_restart(self, nodes: int) -> None:
        """Bounce ``nodes`` worker processes: the capacity loss is
        temporary (the supervisor restarts them after the derived
        recovery pause), but the state consequences are the same as a
        crash -- in-memory state on the bounced workers is gone."""
        if self.failed or nodes <= 0:
            return
        if nodes >= self._active_workers:
            # Bouncing every remaining worker leaves nothing supervising
            # the restart: fatal under any policy.  Account and log the
            # fault first so the failed trial keeps its diagnostics.
            active = self._active_workers
            exposed = self._on_node_failure(1.0)
            lost, dup = self.guarantees.on_fault(max(0.0, exposed))
            self.state_lost_weight += lost
            self._log_fault(
                "restart",
                pause_s=0.0,
                detection_s=self.checkpoint.detection_timeout_s,
                exposed_weight=max(0.0, exposed),
                lost_weight=lost,
                duplicated_weight=dup,
                fatal=1.0,
            )
            self._fail(
                SutFailure(
                    f"{self.name}: process restart bounced all "
                    f"{active} remaining workers",
                    at_time=self.sim.now,
                )
            )
            return
        lost_fraction = nodes / self._active_workers
        self._active_workers -= nodes
        exposed = self._on_node_failure(lost_fraction)
        lost, dup = self.guarantees.on_fault(max(0.0, exposed))
        self.state_lost_weight += lost
        pause = self._recovery_pause_s(lost_fraction)
        self._pause_for_recovery(pause)
        self.sim.schedule(pause, self._restore_workers, nodes)
        self._log_fault(
            "restart",
            pause_s=pause,
            detection_s=self.checkpoint.detection_timeout_s,
            exposed_weight=max(0.0, exposed),
            lost_weight=lost,
            duplicated_weight=dup,
        )

    def _apply_slow(self, nodes: int, factor: float, duration_s: float) -> None:
        """Degrade ``nodes`` workers to ``factor`` of their capacity for
        ``duration_s`` (straggler; no state is lost, no pause served).

        The reschedule policy may replace detected stragglers with
        standbys: a straggler outlasting the failure detector is
        abandoned once its state has migrated to the promoted spare, so
        its slowdown ends at detection + migration instead of running
        the full fault duration.  Stragglers below the detection timeout
        are never migrated -- the fault clears before anyone notices.
        """
        if self.failed or nodes <= 0:
            return
        nodes = min(nodes, self._active_workers)
        if nodes <= 0:
            return
        active = self._active_workers
        plan = self.reschedule.plan_straggler(
            nodes=nodes,
            duration_s=duration_s,
            standbys_left=self._standbys_available,
            state_bytes=self.state.used_bytes,
            active=active,
            node=self.cluster.node,
        )
        replaced = plan.promoted
        riding = nodes - replaced
        if riding > 0:
            multiplier = (active - riding + riding * factor) / active
            self._slow_events.append(
                (self.sim.now + duration_s, multiplier)
            )
        extra: Dict[str, float] = {}
        if replaced > 0:
            # The replaced stragglers stay slow until the detector fires
            # and the migration lands, whichever view of the fault ends
            # first; the spare is consumed permanently.
            self._standbys_available -= replaced
            self.standbys_promoted += replaced
            handoff_s = min(
                duration_s,
                self.reschedule.detection_timeout_s + plan.migration_pause_s,
            )
            multiplier = (active - replaced + replaced * factor) / active
            self._slow_events.append(
                (self.sim.now + handoff_s, multiplier)
            )
            extra["promoted"] = float(replaced)
            extra["migrated_bytes"] = plan.migrated_bytes
            extra["migration_s"] = plan.migration_pause_s
        self._log_fault("slow", pause_s=0.0, **extra)

    def _apply_partition(self, duration_s: float) -> None:
        """Cut the network between the driver queues and the workers:
        ingest stops for ``duration_s`` while processing of already
        buffered data continues."""
        if self.failed:
            return
        self._partition_until = max(
            self._partition_until, self.sim.now + duration_s
        )
        self._log_fault("partition", pause_s=0.0)

    def _apply_disconnect(self, queue_index: int, duration_s: float) -> None:
        """Disconnect one driver queue from the source operators; its
        partition backlogs and the watermark stalls until reconnect."""
        if self.failed or self.source is None:
            return
        self.source.disconnect(queue_index, until=self.sim.now + duration_s)
        self._log_fault("disconnect", pause_s=0.0)

    def _apply_flap(self, event: FlappingNode) -> None:
        """Worker ``event.node`` oscillates: during each seeded down
        segment the node contributes no capacity (like a transient
        one-node outage); between segments it is fully back.  No state
        is exposed -- the process survives, its machine just blinks.
        The heartbeat consequences live in :mod:`repro.detect`; here
        only capacity is modulated, via the same ``_slow_events``
        mechanism as stragglers."""
        if self.failed:
            return
        segments = event.down_segments()
        for start, end in segments:
            self.sim.schedule_at(start, self._gray_segment, event.node, end, 0.0)
        self._log_fault(
            "flap",
            pause_s=0.0,
            node=float(event.node),
            segments=float(len(segments)),
            duration_s=event.duration_s,
        )

    def _apply_degrade(self, event: DegradingNode) -> None:
        """Fail-slow on ``event.node``: capacity ramps down the
        piecewise-constant schedule of ``event.segments()``.  Unlike
        :class:`SlowNode` there is no supervisor-driven standby
        replacement here -- a ramping gray fault is exactly what the
        fixed-timeout supervisor cannot see; only a detection-plane
        verdict (``apply_suspect_migration``) can end it early."""
        if self.failed:
            return
        for start, end, factor in event.segments():
            self.sim.schedule_at(
                start, self._gray_segment, event.node, end, factor
            )
        self._log_fault(
            "degrade",
            pause_s=0.0,
            node=float(event.node),
            floor_factor=event.floor_factor,
            duration_s=event.duration_s,
        )

    def _apply_asympart(self, event: AsymmetricPartition) -> None:
        """One-way link loss on ``event.node``.  The ``data`` direction
        cuts the node's ingest (it contributes no capacity for the
        window, like a one-node partition); the ``heartbeat`` direction
        is invisible to the data plane entirely -- its only effects are
        control-plane (:mod:`repro.detect`)."""
        if self.failed:
            return
        if event.direction == "data":
            self.sim.schedule_at(
                event.at_s, self._gray_segment, event.node, event.end_s, 0.0
            )
        self._log_fault(
            "asympart",
            pause_s=0.0,
            node=float(event.node),
            data_cut=1.0 if event.direction == "data" else 0.0,
            duration_s=event.duration_s,
        )

    def _gray_segment(self, node: int, until: float, factor: float) -> None:
        """One gray capacity segment begins on ``node``: the node runs
        at ``factor`` of its speed until ``until`` (0.0 = down).
        Skipped once the node has been migrated away on a detector
        verdict -- an abandoned node degrades nothing.  A segment
        already in effect when the node is abandoned runs out on its
        own (bounded by the segment length); only future segments are
        cancelled."""
        if self.failed or node in self._gray_abandoned:
            return
        active = self._active_workers
        if active <= 0:
            return
        multiplier = max(0.0, (active - 1 + factor) / active)
        self._slow_events.append((until, multiplier))

    def apply_suspect_migration(
        self, node: int, *, spurious: bool
    ) -> Optional[Dict[str, float]]:
        """A failure detector convicted live worker ``node``: evict it.

        This is the verdict-to-action seam of :mod:`repro.detect`.  The
        scheduler cannot distinguish a true conviction from a false
        positive, so the cost is identical either way: the suspect's
        state moves over the NIC (``ReschedulePolicy.plan_suspect``)
        onto a promoted standby when one is available -- else spread
        over the survivors, shrinking the cluster by one -- and the
        pipeline pauses for the migration.  ``spurious`` is carried
        into the fault log purely as metrology (the plane's ground
        truth); it never changes behaviour.  Returns None (and does
        nothing) when the policy declines to act.
        """
        if self.failed or self._active_workers <= 0:
            return None
        active = self._active_workers
        plan = self.reschedule.plan_suspect(
            active=active,
            standbys_left=self._standbys_available,
            state_bytes=self.state.used_bytes,
            node=self.cluster.node,
        )
        if plan.promoted == 0 and plan.survivors == active:
            return None
        self._gray_abandoned.add(node)
        if plan.promoted:
            # The spare takes the suspect's slots once the migration
            # lands: headcount is unchanged, only the pause is paid.
            self._standbys_available -= plan.promoted
            self.standbys_promoted += plan.promoted
        else:
            self._active_workers -= 1
            self._dead_workers += 1
        pause = plan.migration_pause_s
        self._suspect_migrations += 1
        self._pause_for_suspect(pause)
        self._log_fault(
            "suspect",
            pause_s=pause,
            node=float(node),
            spurious=1.0 if spurious else 0.0,
            promoted=float(plan.promoted),
            migrated_bytes=plan.migrated_bytes,
            migration_s=plan.migration_pause_s,
        )
        return {
            "pause_s": pause,
            "promoted": float(plan.promoted),
            "migrated_bytes": plan.migrated_bytes,
        }

    def _pause_for_suspect(self, pause: float) -> None:
        """Suspend processing for a detector-driven eviction.  Billed
        apart from both fault recovery and rescales so spurious verdict
        cost is visible on its own line."""
        if pause <= 0:
            return
        self._suspect_pause_total += pause
        self._paused_until = max(self._paused_until, self.sim.now + pause)
        self._ramp_from_s = max(self._ramp_from_s, self._paused_until)

    def _restore_workers(self, nodes: int) -> None:
        if self.failed:
            return
        ceiling = self.cluster.workers - self._dead_workers
        self._active_workers = min(self._active_workers + nodes, ceiling)

    def _promote_standbys(self, nodes: int) -> None:
        """A standby finishes warming up: it takes over a dead node's
        slots, so the dead count drops and capacity returns (bounded by
        the nominal worker count -- spares replace, they never add)."""
        if self.failed:
            return
        promote = min(nodes, self._dead_workers)
        if promote <= 0:
            return
        self._dead_workers -= promote
        self.standbys_promoted += promote
        ceiling = self.cluster.workers - self._dead_workers
        self._active_workers = min(self._active_workers + promote, ceiling)

    def _pause_for_recovery(self, pause: float) -> None:
        self._recovery_pause_total += pause
        self._paused_until = max(self._paused_until, self.sim.now + pause)
        # Anchor the post-recovery admission ramp at the pause end (the
        # latest one, if pauses overlap).  Inert policies ignore it.
        self._ramp_from_s = max(self._ramp_from_s, self._paused_until)

    def _recovery_pause_s(self, lost_fraction: float) -> float:
        """The processing outage for one crash/restart: the explicit
        ``EngineConfig.recovery_pause_s`` override if set, else derived
        from the checkpoint model and this engine's recovery semantics."""
        if self.config.recovery_pause_s is not None:
            return self.config.recovery_pause_s
        return self.checkpoint.recovery_pause_s(
            self.recovery_semantics,
            state_bytes=self.state.used_bytes,
            node=self.cluster.node,
            active_workers=self._active_workers,
            workers=self.cluster.workers,
            replay_span_s=max(0.0, self.sim.now - self._last_checkpoint_s),
            lost_fraction=lost_fraction,
        )

    # -- elastic rescale --------------------------------------------------------

    @property
    def active_workers(self) -> int:
        """Workers currently serving (dead and draining nodes excluded
        once their departure completes)."""
        return self._active_workers

    @property
    def standbys_available(self) -> int:
        """Hot spares currently idle in the pool."""
        return self._standbys_available

    @property
    def target_workers(self) -> int:
        """The cluster size all in-flight rescales are steering toward
        (what policy bounds must be checked against)."""
        return self.cluster.workers + self._provisioning - self._retiring

    @property
    def billed_nodes(self) -> int:
        """Machines currently costing money: serving workers, idle hot
        spares, and nodes already provisioning toward a scale-out.
        Draining scale-in victims keep billing until they depart."""
        return (
            self._active_workers + self._standbys_available + self._provisioning
        )

    def request_scale_out(
        self, nodes: int, *, reason: str = "policy", detect_s: float = 0.0
    ) -> Optional[Dict[str, Any]]:
        """Begin adding ``nodes`` workers; returns the rescale-log entry
        or None when refused (engine failed, or a rescale in flight).

        Capacity comes from the standby pool first (hot spares skip the
        cold-boot lead time); the remainder cold-boots for
        ``rescale.provision_s``.  At cutover the new owners' share of
        keyed state migrates over their NICs and the engine pays its
        style pause; capacity is online when both complete.
        """
        if self.failed or nodes <= 0:
            return None
        now = self.sim.now
        if now < self._rescale_busy_until:
            return None
        spares = min(nodes, self._standbys_available)
        lead = self.rescale.lead_s(cold=nodes - spares)
        self._standbys_available -= spares
        self._provisioning += nodes
        entry: Dict[str, Any] = {
            "kind": "scale-out",
            "decided_at_s": now,
            "delta": float(nodes),
            "from_workers": float(self.cluster.workers),
            "to_workers": float(self.cluster.workers + nodes),
            "detect_s": float(detect_s),
            "reason": reason,
            "spares_used": float(spares),
            "provision_s": lead,
        }
        self.rescale_log.append(entry)
        self._rescale_busy_until = now + lead
        if self.obs is not None:
            self.obs.add_event(
                "autoscale.scale-out", now, delta=float(nodes), reason=reason
            )
        self.sim.schedule(lead, self._cutover_scale_out, nodes, entry)
        return entry

    def _cutover_scale_out(self, nodes: int, entry: Dict[str, Any]) -> None:
        if self.failed:
            self._provisioning -= nodes
            return
        now = self.sim.now
        moved_fraction = nodes / (self.cluster.workers + nodes)
        migrated = max(0.0, self.state.used_bytes) * moved_fraction
        migration_s = self.reschedule.migration_pause_s(
            migrated, self.cluster.node, nodes
        )
        style_s = self._rescale_style_pause_s(migrated)
        pause = style_s + migration_s
        exposed = self._rescale_exposed_weight(moved_fraction)
        lost, dup = self.guarantees.on_fault(max(0.0, exposed))
        self.state_lost_weight += lost
        self._pause_for_rescale(pause)
        self._migration_until = max(self._migration_until, now + pause)
        self._rescale_busy_until = max(self._rescale_busy_until, now + pause)
        entry.update(
            cutover_at_s=now,
            migrated_bytes=migrated,
            migration_s=migration_s,
            style_pause_s=style_s,
            pause_s=pause,
            exposed_weight=max(0.0, exposed),
            lost_weight=lost,
            duplicated_weight=dup,
        )
        self.sim.schedule(pause, self._complete_scale_out, nodes, entry)

    def _complete_scale_out(self, nodes: int, entry: Dict[str, Any]) -> None:
        self._provisioning -= nodes
        if self.failed:
            return
        self.cluster = self.cluster.with_workers(self.cluster.workers + nodes)
        self._active_workers += nodes
        entry["online_at_s"] = self.sim.now
        if self.obs is not None:
            self.obs.add_event(
                "autoscale.capacity-online",
                self.sim.now,
                workers=float(self._active_workers),
            )

    def request_scale_in(
        self, nodes: int, *, reason: str = "policy", detect_s: float = 0.0
    ) -> Optional[Dict[str, Any]]:
        """Begin removing ``nodes`` workers; returns the rescale-log
        entry or None when refused.

        Refusal cases enforce the scale-in safety invariant: never while
        an earlier migration is still in flight (a victim might hold
        un-migrated state), never the last active worker.  Idle standbys
        are returned *first* -- they cost node-seconds but hold no state,
        so releasing them needs no migration at all; only the remainder
        drains actives through :meth:`ReschedulePolicy.plan_scale_in`.
        """
        if self.failed or nodes <= 0:
            return None
        now = self.sim.now
        if now < self._rescale_busy_until or now < self._migration_until:
            return None
        spares = min(nodes, self._standbys_available)
        victims = min(nodes - spares, self._active_workers - 1)
        if spares <= 0 and victims <= 0:
            return None
        self._standbys_available -= spares
        entry: Dict[str, Any] = {
            "kind": "scale-in",
            "decided_at_s": now,
            "delta": -float(spares + victims),
            "from_workers": float(self.cluster.workers),
            "to_workers": float(self.cluster.workers - victims),
            "detect_s": float(detect_s),
            "reason": reason,
            "spares_returned": float(spares),
            "provision_s": 0.0,
        }
        if victims <= 0:
            # Pure spare return: no state moves, no pause, done now.
            entry.update(
                cutover_at_s=now,
                migrated_bytes=0.0,
                migration_s=0.0,
                style_pause_s=0.0,
                pause_s=0.0,
                exposed_weight=0.0,
                lost_weight=0.0,
                duplicated_weight=0.0,
                online_at_s=now,
            )
            self.rescale_log.append(entry)
            if self.obs is not None:
                self.obs.add_event(
                    "autoscale.scale-in", now, delta=-float(spares),
                    reason=reason,
                )
            return entry
        plan = self.reschedule.plan_scale_in(
            remove=victims,
            active=self._active_workers,
            state_bytes=self.state.used_bytes,
            node=self.cluster.node,
        )
        moved_fraction = victims / self._active_workers
        style_s = self._rescale_style_pause_s(plan.migrated_bytes)
        pause = style_s + plan.migration_pause_s
        exposed = self._rescale_exposed_weight(moved_fraction)
        lost, dup = self.guarantees.on_fault(max(0.0, exposed))
        self.state_lost_weight += lost
        self._pause_for_rescale(pause)
        self._migration_until = max(self._migration_until, now + pause)
        self._rescale_busy_until = max(self._rescale_busy_until, now + pause)
        self._retiring += victims
        entry.update(
            cutover_at_s=now,
            migrated_bytes=plan.migrated_bytes,
            migration_s=plan.migration_pause_s,
            style_pause_s=style_s,
            pause_s=pause,
            exposed_weight=max(0.0, exposed),
            lost_weight=lost,
            duplicated_weight=dup,
        )
        self.rescale_log.append(entry)
        if self.obs is not None:
            self.obs.add_event(
                "autoscale.scale-in", now, delta=entry["delta"], reason=reason
            )
        self.sim.schedule(pause, self._complete_scale_in, victims, entry)
        return entry

    def _complete_scale_in(self, victims: int, entry: Dict[str, Any]) -> None:
        self._retiring -= victims
        if self.failed:
            return
        # A crash may have raced the drain; never depart below one
        # active worker however the interleaving went.
        victims = min(victims, self._active_workers - 1, self.cluster.workers - 1)
        if victims <= 0:
            entry["online_at_s"] = self.sim.now
            return
        self._active_workers -= victims
        self.cluster = self.cluster.with_workers(self.cluster.workers - victims)
        entry["online_at_s"] = self.sim.now
        if self.obs is not None:
            self.obs.add_event(
                "autoscale.departed",
                self.sim.now,
                workers=float(self._active_workers),
            )

    def _rescale_style_pause_s(self, migrated_bytes: float) -> float:
        """The engine-style component of the cutover pause (the state
        migration itself is priced separately, by the reschedule
        policy's NIC math)."""
        style = self.rescale.style
        if style == STYLE_MICRO_BATCH:
            # The next micro-batch plans on the new cluster; nothing to
            # pause.
            return 0.0
        if style == STYLE_SAVEPOINT:
            # Aligned savepoint over the whole state, then restart at
            # the new parallelism.
            return self.checkpoint.sync_pause_s(self.state.used_bytes)
        if style == STYLE_REPARTITION:
            # Changelog flush for the moved tasks only.
            return self.checkpoint.sync_pause_s(migrated_bytes)
        # STYLE_REBALANCE: a planned in-flight rebalance briefly halts
        # the topology; far cheaper than the crash-recovery rebalance
        # but it grows with topology size the same way.
        return (
            0.25
            * self.checkpoint.rebalance_base_s
            * math.sqrt(max(1.0, self._active_workers) / 2.0)
        )

    def _rescale_exposed_weight(self, moved_fraction: float) -> float:
        """Weight whose delivery is endangered by moving
        ``moved_fraction`` of the keyed state during a rescale.

        Default: none -- snapshot-based styles (savepoint, micro-batch)
        move state intact under exactly-once semantics.  At-most-once
        rebalancers and at-least-once repartitioners override this; the
        returned weight is fed through the same
        :class:`GuaranteeAccounting` as fault exposure, so the delivery
        ledger stays balanced through every scale event.
        """
        return 0.0

    def _pause_for_rescale(self, pause: float) -> None:
        """Suspend processing for a rescale cutover.  Accounted apart
        from fault recovery (``_recovery_pause_total``) so recovery
        metrology never conflates a planned pause with a failure."""
        if pause <= 0:
            return
        self._rescale_pause_total += pause
        self._paused_until = max(self._paused_until, self.sim.now + pause)
        self._ramp_from_s = max(self._ramp_from_s, self._paused_until)

    def _log_fault(self, kind: str, **fields: float) -> None:
        entry: Dict[str, float] = {"kind": kind, "at_s": self.sim.now}  # type: ignore[dict-item]
        entry.update(fields)
        self.fault_log.append(entry)
        if self.obs is not None:
            # Mirror every injected fault onto the observability
            # timeline so traces alive at that moment are annotated
            # with it; a recovery pause additionally marks when
            # processing resumes.
            self.obs.add_event(f"fault.{kind}", self.sim.now, **fields)
            pause = fields.get("pause_s", 0.0)
            if pause > 0:
                self.obs.add_event(
                    "recovery.resume", self.sim.now + pause, cause=kind
                )

    def _on_node_failure(self, lost_fraction: float) -> float:
        """State consequences of losing workers; returns the *exposed*
        weight whose fate the delivery guarantee decides.

        Default (checkpoint-restore engines): the replay window -- all
        weight ingested since the last completed checkpoint.
        """
        return max(0.0, self.ingested_weight - self._ckpt_ingested_weight)

    # -- JVM pauses ------------------------------------------------------------

    def _in_gc_pause(self, now: float, dt: float) -> bool:
        if now < self._paused_until:
            return True
        if self.config.gc_rate_per_s <= 0:
            return False
        if self.rng.random() < self.config.gc_rate_per_s * dt:
            mean = self.config.gc_pause_mean_s
            sigma = self.config.gc_pause_sigma
            # Lognormal with the configured mean: mu = ln(mean) - sigma^2/2.
            mu = np.log(max(mean, 1e-6)) - sigma**2 / 2.0
            pause = float(self.rng.lognormal(mu, sigma))
            self._paused_until = now + pause
            return True
        return False

    def _emit_jitter(self) -> float:
        """Multiplicative jitter applied to window-emission delays."""
        sigma = self.config.emit_jitter_sigma
        if sigma <= 0:
            return 1.0
        return float(self.rng.lognormal(-(sigma**2) / 2.0, sigma))

    # -- engine-specific hooks -------------------------------------------------

    def _internal_backlog_weight(self) -> float:
        """Events buffered inside the engine (drives throttling)."""
        return 0.0

    def _modulate_ingest_budget(self, budget: float, dt: float) -> float:
        """Engine-specific shaping of the per-tick ingest budget (the
        pull-rate signatures of Figure 9); default: unshaped."""
        return budget

    @abstractmethod
    def _process(self, records: List[Record], dt: float) -> None:
        """Feed ingested records into the windowing pipeline."""

    def _process_batch(self, blocks: List[RecordBlock], dt: float) -> None:
        """Columnar `_process`: feed whole blocks into the pipeline.

        The built-in engines override this with block-at-a-time window
        updates; the default materializes records and delegates, so
        custom engines (the pluggable-SUT interface) keep working in
        vector mode with bitwise-identical numerics -- just without the
        speedup.
        """
        self._process(materialize_all(blocks), dt)

    def _on_tick_end(self, dt: float) -> None:
        """Close ready windows / advance jobs; default no-op."""

    def _bind_obs_gauges(self, registry) -> None:
        """Publish engine-side instruments as polled gauges.

        Everything is pulled at the registry's sampling interval; the
        per-event hot path stays untouched.
        """
        registry.gauge("engine.ingested_weight").bind(
            lambda: self.ingested_weight
        )
        registry.gauge("engine.backlog_weight").bind(
            self._internal_backlog_weight
        )
        registry.gauge("engine.active_workers").bind(
            lambda: float(self._active_workers)
        )
        registry.gauge("engine.state_bytes").bind(
            lambda: self.state.used_bytes
        )
        registry.gauge("engine.capacity_events_per_s").bind(
            self._capacity_events_per_s
        )
        bp = self._backpressure()
        for key in bp.metrics():
            registry.gauge(f"bp.{key}").bind(
                lambda k=key: bp.metrics().get(k, 0.0)
            )
        for key in self.conservation():
            registry.gauge(f"conservation.{key}").bind(
                lambda k=key: self.conservation().get(k, 0.0)
            )

    def conservation(self) -> Dict[str, float]:
        """Per-operator weight-conservation ledger (all in event weight,
        each record counted once).  Engines with window state override
        this; the invariants tested against it:

        - ``ingested == staged + admitted + dropped`` -- every ingested
          record is either still in transit inside the engine
          (``staged``), folded into window state, or dropped as late;
        - ``admitted == closed + stored + lost`` -- admitted weight is
          either released by a window close, still buffered in open
          windows, or destroyed by a fault.

        Load shedding adds the upstream term ``shed``: weight the
        degradation policy dropped at the driver queues *before*
        ingestion.  It balances the driver-side ledger
        (``pushed == pulled + queued + shed``) and never enters the
        processing-side invariants above.
        """
        return {"ingested": self.ingested_weight, "shed": self.shed_weight}

    def diagnostics(self) -> Dict[str, float]:
        """Engine-internal counters for reports (never used as metrics)."""
        diag = {
            "ingested_weight": self.ingested_weight,
            "state_used_bytes": self.state.used_bytes,
            "state_peak_bytes": self.state.peak_bytes,
            "active_workers": float(self._active_workers),
            "state_lost_weight": self.state_lost_weight,
            "faults_injected": float(len(self.fault_log)),
            "lost_weight": self.guarantees.lost_weight,
            "duplicated_weight": self.guarantees.duplicated_weight,
            "checkpoints_completed": float(self._checkpoints_completed),
            "checkpoint_pause_total_s": self._checkpoint_pause_total,
            "recovery_pause_total_s": self._recovery_pause_total,
            "standbys_available": float(self._standbys_available),
            "standbys_promoted": float(self.standbys_promoted),
            "shed_weight": self.shed_weight,
            "cluster_workers": float(self.cluster.workers),
            "rescale_events": float(len(self.rescale_log)),
            "rescale_pause_total_s": self._rescale_pause_total,
            "suspect_migrations": float(self._suspect_migrations),
            "suspect_pause_total_s": self._suspect_pause_total,
        }
        for key, value in self._backpressure().metrics().items():
            diag[f"bp.{key}"] = value
        for key, value in self.conservation().items():
            diag[f"conservation.{key}"] = value
        return diag


def windowed_conservation(store, staged: float = 0.0) -> Dict[str, float]:
    """Conservation ledger terms for a windowed store.

    Accepts a :class:`~repro.engines.operators.window.KeyedWindowStore`
    or a :class:`~repro.engines.operators.join.JoinWindowStore` (summed
    over both sides).  ``staged`` is weight the engine has ingested but
    not yet offered to the store (in-flight tuples, un-fired batches).
    """
    sides = (
        [store.purchases, store.ads] if hasattr(store, "purchases") else [store]
    )
    wpe = store.window.windows_per_event
    return {
        "staged": staged,
        "admitted": sum(s.admitted_weight for s in sides),
        "dropped": sum(s.dropped_weight for s in sides),
        "closed": sum(s.closed_weight for s in sides),
        "stored": sum(s.stored_weight() for s in sides) / wpe,
        "lost": sum(s.lost_weight for s in sides),
    }
