"""Streaming operators shared by the engine models.

- :mod:`repro.engines.operators.window` -- sliding-window assignment and
  keyed window stores implementing the paper's Definitions 3 and 4 (a
  windowed output's event-/processing-time is the maximum over its
  contributing inputs).
- :mod:`repro.engines.operators.aggregate` -- windowed SUM aggregation
  strategies: incremental (Flink), buffered/bulk (Storm), mini-batch
  partials with optional inverse-reduce (Spark).
- :mod:`repro.engines.operators.join` -- windowed equi-join with
  selectivity control, plus the naive Storm join.
- :mod:`repro.engines.operators.source` -- the SUT-side source operator:
  round-robin pulls from the driver queues, ingest-time stamping, and
  watermark tracking.
- :mod:`repro.engines.operators.sink` -- the output operator where the
  driver measures latency.
"""

from repro.engines.operators.join import JoinWindowStore, join_window_outputs
from repro.engines.operators.sink import Sink
from repro.engines.operators.source import SourceSet
from repro.engines.operators.window import (
    KeyedWindowStore,
    WindowAccumulator,
    WindowContents,
)

__all__ = [
    "JoinWindowStore",
    "KeyedWindowStore",
    "Sink",
    "SourceSet",
    "WindowAccumulator",
    "WindowContents",
    "join_window_outputs",
]
