"""Windowed aggregation strategies.

All three engines compute the same query -- ``SUM(price) GROUP BY
gemPackID`` over a sliding window -- but with architecturally different
execution, which the paper ties directly to the measured differences:

- **Incremental** (Flink): aggregates are folded in on the fly, one
  keyed update *per containing window* per record (the paper notes Flink
  "cannot share aggregate results among different sliding windows").
  State per key is one accumulator; emission at window close is
  immediate.
- **Buffered/bulk** (Storm): tuples are buffered and the window is
  evaluated in bulk at close; state grows with the window volume and the
  evaluation adds a close-time delay proportional to it.
- **Mini-batch partials** (Spark): each batch builds per-key partial
  aggregates (``reduceByKey`` -> ShuffledRDD + MapPartitionsRDD); a
  window result merges the partials of the batches it spans.  With
  caching, merged window state is retained across batches ("the cache
  operation consumes the memory aggressively", Experiment 3); with an
  **inverse-reduce function** the window state is updated by adding the
  new batch and subtracting the expired one -- O(keys) instead of
  O(window volume).

The semantic core (max-event-time anchors) lives in
:mod:`repro.engines.operators.window`; this module turns closed windows
and batch partials into output tuples.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.records import OutputRecord, Record
from repro.engines.operators.window import WindowAccumulator, WindowContents
from repro.workloads.queries import WindowSpec


def aggregation_outputs(
    contents: WindowContents, emit_time: float
) -> List[OutputRecord]:
    """One output tuple per key of a closed window (Definition 3 / 4).

    ``emit_time`` is the simulated time at which the SUT's output
    operator actually emits -- window close plus any engine-specific
    evaluation delay; the driver derives both latencies from the
    returned records.
    """
    traces_by_key = None
    if contents.traces:
        traces_by_key = {}
        for trace in contents.traces:
            traces_by_key.setdefault(trace.key, []).append(trace)
    outputs = []
    for key, acc in contents.by_key.items():
        outputs.append(
            OutputRecord(
                key=key,
                value=acc.value,
                event_time=acc.max_event_time,
                processing_time=acc.max_processing_time,
                emit_time=emit_time,
                weight=1.0,
                window_end=contents.end_time,
                traces=(
                    traces_by_key.pop(key, None)
                    if traces_by_key is not None
                    else None
                ),
            )
        )
    return outputs


class BatchPartialAggregator:
    """Per-mini-batch partial aggregation (Spark's reduceByKey stage).

    Records arriving during one batch interval are folded into per-key
    partials *per window index* (a record spans ``windows_per_event``
    windows).  At batch end the partials are handed to the window state
    of the job, and the partial store resets for the next batch.
    """

    def __init__(self, window: WindowSpec) -> None:
        self.window = window
        self._partials: Dict[int, Dict[int, WindowAccumulator]] = {}
        self._traces: Dict[int, List] = {}
        self.batch_weight = 0.0

    def add(self, record: Record) -> int:
        first, last = self.window.window_index_range(record.event_time)
        updates = 0
        for idx in range(first, last + 1):
            per_key = self._partials.setdefault(idx, {})
            acc = per_key.get(record.key)
            if acc is None:
                acc = WindowAccumulator()
                per_key[record.key] = acc
            acc.add(record)
            updates += 1
        self.batch_weight += record.weight
        if record.trace is not None:
            # Same earliest-open-window rule as KeyedWindowStore; the
            # partial aggregator never closes windows itself, so the
            # earliest containing window is simply `first`.
            self._traces.setdefault(first, []).append(record.trace)
            record.trace = None
        return updates

    def drain(self) -> Dict[int, Dict[int, WindowAccumulator]]:
        """Hand the batch's partials to the job and reset."""
        partials = self._partials
        self._partials = {}
        self.batch_weight = 0.0
        return partials

    def drain_traces(self) -> Dict[int, List]:
        """Hand the batch's stashed traces to the job and reset."""
        traces = self._traces
        self._traces = {}
        return traces


class WindowedPartialMerger:
    """Merges mini-batch partials into full window results.

    This is the Spark window operator: window results are assembled from
    the partial aggregates of the batches spanning the window.  With
    ``inverse_reduce=False`` the merger keeps every batch's partials
    alive until all windows they touch have closed (the cached-RDD
    memory profile); with ``inverse_reduce=True`` partials are folded
    into per-window state immediately and released (the paper's fix).
    Both modes produce identical results; they differ in state held and
    (in the engine model) in per-batch cost.
    """

    def __init__(self, window: WindowSpec, inverse_reduce: bool = False) -> None:
        self.window = window
        self.inverse_reduce = inverse_reduce
        self._window_state: Dict[int, Dict[int, WindowAccumulator]] = {}
        self._traces: Dict[int, List] = {}
        self._closed_through: Optional[int] = None
        self.dropped_weight = 0.0
        """Weight of late partials lost to already-emitted windows
        (normalised like KeyedWindowStore.dropped_weight)."""
        self.absorbed_weight = 0.0
        """Per-record weight folded into window state (normalised by
        windows_per_event), the merger-side conservation input."""
        self.closed_weight = 0.0
        """Normalised weight released by pop_ready."""

    def absorb(
        self,
        partials: Dict[int, Dict[int, WindowAccumulator]],
        traces: Optional[Dict[int, List]] = None,
    ) -> None:
        """Fold one batch's per-window partials into window state.

        Partials for windows that already closed (stragglers that were
        still queued when their window was emitted) are dropped, exactly
        like :class:`KeyedWindowStore` drops late adds -- and so are
        their stashed traces.
        """
        for idx, per_key in partials.items():
            batch_weight = sum(acc.weight for acc in per_key.values())
            if self._closed_through is not None and idx <= self._closed_through:
                self.dropped_weight += (
                    batch_weight / self.window.windows_per_event
                )
                if traces:
                    for trace in traces.pop(idx, []):
                        trace.drop()
                continue
            self.absorbed_weight += batch_weight / self.window.windows_per_event
            state = self._window_state.setdefault(idx, {})
            for key, acc in per_key.items():
                existing = state.get(key)
                if existing is None:
                    existing = WindowAccumulator()
                    state[key] = existing
                existing.merge(acc)
        if traces:
            for idx, idx_traces in traces.items():
                self._traces.setdefault(idx, []).extend(idx_traces)

    def pop_ready(
        self, through_end_time: float, at_time: Optional[float] = None
    ) -> List[WindowContents]:
        """Close every window ending at or before ``through_end_time``.

        ``at_time`` stamps the ``closed`` mark on buffered traces.
        """
        ready = sorted(
            idx
            for idx in self._window_state
            if self.window.window_end(idx) <= through_end_time
        )
        closed = []
        for idx in ready:
            traces = self._traces.pop(idx, [])
            if traces and at_time is not None:
                for trace in traces:
                    trace.mark("closed", at_time)
            contents = WindowContents(
                index=idx,
                end_time=self.window.window_end(idx),
                start_time=self.window.window_start(idx),
                by_key=self._window_state.pop(idx),
                traces=traces,
            )
            self.closed_weight += (
                contents.total_weight / self.window.windows_per_event
            )
            closed.append(contents)
            if self._closed_through is None or idx > self._closed_through:
                self._closed_through = idx
        return closed

    def stored_weight(self) -> float:
        return sum(
            acc.weight
            for per_key in self._window_state.values()
            for acc in per_key.values()
        )

    @property
    def open_window_count(self) -> int:
        return len(self._window_state)
