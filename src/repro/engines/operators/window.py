"""Sliding-window assignment and the keyed window store.

This module implements the latency-defining semantics of the paper:

- **Window assignment**: window ``i`` covers the event-time interval
  ``(i*slide - size, i*slide]`` (Figure 1's "(5, 605]" window).  Each
  event belongs to ``ceil(size/slide)`` consecutive windows.
- **Definition 3** (event-time of windowed events): a windowed output's
  event-time is the *maximum event-time of all events that contributed
  to that output* -- for a grouped aggregation, the maximum over the
  output key's events in that window.
- **Definition 4** (processing-time of windowed events): same maximum,
  over the contributing events' ingest times.

The store accumulates a SUM per (window, key) on the fly; engines that
buffer raw tuples instead of aggregating incrementally (Storm) use the
same store for semantics but account memory per buffered event and pay a
bulk evaluation cost at close time (see the engine models).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.records import Record
from repro.workloads.queries import WindowSpec


class WindowAccumulator:
    """Per-(window, key) running aggregate and latency anchors."""

    __slots__ = ("value", "weight", "max_event_time", "max_processing_time")

    def __init__(self) -> None:
        self.value = 0.0
        self.weight = 0.0
        self.max_event_time = float("-inf")
        self.max_processing_time = float("-inf")

    def add(self, record: Record) -> None:
        """Fold one record (cohort) into the accumulator.

        A cohort of weight ``w`` contributes ``w * value`` to the SUM --
        the cohort stands for ``w`` events each carrying ``value``.
        """
        self.value += record.value * record.weight
        self.weight += record.weight
        if record.event_time > self.max_event_time:
            self.max_event_time = record.event_time
        ingest = record.ingest_time
        if ingest is not None and ingest > self.max_processing_time:
            self.max_processing_time = ingest

    def merge(self, other: "WindowAccumulator") -> None:
        """Combine two partial accumulators (used by mini-batch partials)."""
        self.value += other.value
        self.weight += other.weight
        self.max_event_time = max(self.max_event_time, other.max_event_time)
        self.max_processing_time = max(
            self.max_processing_time, other.max_processing_time
        )

    def subtract(self, other: "WindowAccumulator") -> None:
        """Inverse-reduce: remove a partial that slid out of the window.

        Only the additive fields can be inverted; the max-time anchors
        are *not* restored (the real inverse-reduce has the same
        limitation, which is acceptable because evicted data is always
        older than retained data, so the maxima are unaffected).
        """
        self.value -= other.value
        self.weight -= other.weight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowAccumulator(value={self.value:g}, weight={self.weight:g}, "
            f"max_event_time={self.max_event_time:g})"
        )


@dataclass
class WindowContents:
    """Everything known about one closed window."""

    index: int
    end_time: float
    start_time: float
    by_key: Dict[int, WindowAccumulator] = field(default_factory=dict)
    traces: List[object] = field(default_factory=list)
    """Lifecycle traces of sampled cohorts whose *first* open window was
    this one (observability; empty unless tracing is enabled)."""

    @property
    def total_weight(self) -> float:
        return sum(acc.weight for acc in self.by_key.values())

    @property
    def max_event_time(self) -> float:
        """Window-level maximum event-time (used by join outputs)."""
        if not self.by_key:
            return float("-inf")
        return max(acc.max_event_time for acc in self.by_key.values())

    @property
    def max_processing_time(self) -> float:
        if not self.by_key:
            return float("-inf")
        return max(acc.max_processing_time for acc in self.by_key.values())


class KeyedWindowStore:
    """Keyed sliding-window state for one stream.

    ``add`` folds a record into every window containing it.  ``close``
    pops a window once the caller's watermark passes its end.  The store
    never closes a window by itself -- *when* to close is an engine
    decision (ideal watermark for Flink/Storm, batch alignment for
    Spark).
    """

    def __init__(self, window: WindowSpec) -> None:
        self.window = window
        self._windows: Dict[int, Dict[int, WindowAccumulator]] = {}
        self._traces: Dict[int, List[object]] = {}
        self._closed_through: Optional[int] = None
        self.total_buffered_weight = 0.0
        self.dropped_weight = 0.0
        """Weight of late contributions lost to already-closed windows
        (each record counts once per closed window it missed, normalised
        by the windows it spans -- so one fully-late record adds its own
        weight once)."""
        self.updates = 0
        """Count of per-window accumulator updates (cost accounting: an
        engine that cannot share aggregates across sliding windows pays
        one keyed update per window per record, as the paper notes for
        Flink)."""
        # Conservation ledger (all in event weight, each record counted
        # once -- per-window contributions are normalised by
        # windows_per_event).  Invariant at any point:
        #   admitted_weight == closed_weight
        #                      + stored_weight()/windows_per_event
        #                      + lost_weight
        # and admitted_weight + dropped_weight == weight ever added.
        self.admitted_weight = 0.0
        self.closed_weight = 0.0
        self.lost_weight = 0.0

    def add(self, record: Record) -> int:
        """Fold ``record`` into all windows containing it.

        Returns the number of per-window updates performed.  Records
        whose event-time falls entirely before already-closed windows
        are dropped (cannot happen with monotone watermarks and FIFO
        queues; guarded for safety).
        """
        first, last = self.window.window_index_range(record.event_time)
        updates = 0
        missed = 0
        first_open: Optional[int] = None
        for idx in range(first, last + 1):
            if self._closed_through is not None and idx <= self._closed_through:
                missed += 1
                continue
            if first_open is None:
                first_open = idx
            per_key = self._windows.get(idx)
            if per_key is None:
                per_key = {}
                self._windows[idx] = per_key
            acc = per_key.get(record.key)
            if acc is None:
                acc = WindowAccumulator()
                per_key[record.key] = acc
            acc.add(record)
            updates += 1
        if updates:
            self.total_buffered_weight += record.weight
        if missed:
            self.dropped_weight += record.weight * (
                missed / self.window.windows_per_event
            )
        self.updates += updates
        self.admitted_weight += record.weight * (
            updates / self.window.windows_per_event
        )
        if record.trace is not None:
            # The trace waits in the *earliest* open window it landed in
            # (that window's close ends the event's buffering span);
            # fully-late records never emit, so their trace is dropped.
            if first_open is None:
                record.trace.drop()
            else:
                self._traces.setdefault(first_open, []).append(record.trace)
            record.trace = None
        return updates

    def ready_indices(self, watermark: float) -> List[int]:
        """Window indices whose end has passed ``watermark``, oldest first."""
        ready = [
            idx
            for idx in self._windows
            if self.window.window_end(idx) <= watermark
        ]
        return sorted(ready)

    def close(self, index: int, at_time: Optional[float] = None) -> WindowContents:
        """Pop a window's contents; further adds to it are ignored.

        ``at_time`` (the engine's clock at close) stamps the ``closed``
        mark on any traces buffered in this window.
        """
        per_key = self._windows.pop(index, {})
        traces = self._traces.pop(index, [])
        if traces and at_time is not None:
            for trace in traces:
                trace.mark("closed", at_time)
        contents = WindowContents(
            index=index,
            end_time=self.window.window_end(index),
            start_time=self.window.window_start(index),
            by_key=per_key,
            traces=traces,
        )
        if self._closed_through is None or index > self._closed_through:
            self._closed_through = index
        # A record contributes its weight once per containing window; on
        # close, release this window's share of the buffered weight.
        released = contents.total_weight / self.window.windows_per_event
        self.closed_weight += released
        self.total_buffered_weight = max(
            0.0, self.total_buffered_weight - released
        )
        return contents

    @property
    def open_window_count(self) -> int:
        return len(self._windows)

    def open_indices(self) -> Iterator[int]:
        return iter(sorted(self._windows))

    def stored_weight(self) -> float:
        """Total event weight currently held across open windows.

        Counts each record once per containing window -- the quantity an
        engine that physically buffers tuples per window would hold.
        """
        return sum(
            acc.weight
            for per_key in self._windows.values()
            for acc in per_key.values()
        )

    def lose_fraction(self, fraction: float) -> float:
        """Discard a fraction of all open window contents.

        Models a worker-node failure taking its partition of every open
        window's state with it (engines without replay/checkpointing).
        Returns the weight lost.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        lost = 0.0
        keep = 1.0 - fraction
        for per_key in self._windows.values():
            for acc in per_key.values():
                lost += acc.weight * fraction
                acc.weight *= keep
                acc.value *= keep
        self.lost_weight += lost / self.window.windows_per_event
        return lost
