"""Columnar window/join/partial stores for the vectorized hot path.

Each class here is the block-at-a-time twin of a scalar store in
:mod:`repro.engines.operators.window` / ``join`` / ``aggregate``, and
*subclasses* it so that ``isinstance`` checks, ledger attributes and the
non-hot-path methods (``ready_indices``, ``open_indices``, conservation
reads) are inherited unchanged.  Only the per-record loops are replaced.

The replacement is bitwise, not approximate (see
:mod:`repro.core.batch` for why that is required and which NumPy ops
qualify):

- A :class:`_WindowCols` keeps one *slot* per key in **first-touch
  order** -- exactly the insertion order of the scalar per-key dict --
  so materialized ``by_key`` dicts iterate identically and every
  left-fold over them (``WindowContents.total_weight``,
  ``stored_weight``, join key matching) reproduces the scalar fold.
- Accumulator updates use one fancy-index ``+=`` per block; block keys
  are unique, so each slot receives exactly one IEEE add per block, the
  same add the scalar ``acc.value += value * weight`` performed.
- Ledgers advance by strict left folds (``fold_add``) over the block's
  cohort weights, in cohort order.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.batch import RecordBlock, as_block, fold_add
from repro.core.records import ADS, PURCHASES, Record
from repro.engines.operators.aggregate import BatchPartialAggregator
from repro.engines.operators.join import JoinWindowStore
from repro.engines.operators.window import (
    KeyedWindowStore,
    WindowAccumulator,
    WindowContents,
)
from repro.workloads.queries import WindowSpec


class _WindowCols:
    """Column arrays for one window: per-key accumulators in slot form.

    Slots are assigned in key first-touch order, mirroring the scalar
    per-key dict's insertion order.  A direct-address table (key ->
    slot) makes the lookup one fancy index; keys are dense small ints
    from the workload's key distribution, so the table stays compact.
    """

    __slots__ = (
        "n", "keys", "values", "weights", "max_et", "max_pt", "_slot_table",
    )

    def __init__(self, key_space_hint: int = 64) -> None:
        self.n = 0
        cap = 16
        self.keys = np.zeros(cap, dtype=np.int64)
        self.values = np.zeros(cap)
        self.weights = np.zeros(cap)
        self.max_et = np.full(cap, float("-inf"))
        self.max_pt = np.full(cap, float("-inf"))
        self._slot_table = np.full(max(1, key_space_hint), -1, dtype=np.int64)

    def _ensure_key_space(self, max_key: int) -> None:
        if max_key < len(self._slot_table):
            return
        grown = np.full(max(max_key + 1, 2 * len(self._slot_table)), -1,
                        dtype=np.int64)
        grown[: len(self._slot_table)] = self._slot_table
        self._slot_table = grown

    def _ensure_capacity(self, needed: int) -> None:
        cap = len(self.keys)
        if needed <= cap:
            return
        new_cap = cap
        while new_cap < needed:
            new_cap *= 2
        for name in ("keys", "values", "weights", "max_et", "max_pt"):
            old = getattr(self, name)
            fill = float("-inf") if name in ("max_et", "max_pt") else 0
            grown = np.full(new_cap, fill, dtype=old.dtype)
            grown[: cap] = old
            setattr(self, name, grown)

    def add_cohorts(
        self,
        keys: np.ndarray,
        weights: np.ndarray,
        value: float,
        event_time: float,
        ingest_time: Optional[float],
    ) -> None:
        """Fold one block's cohorts into this window's accumulators.

        Bitwise equal to ``for each cohort: acc.add(record)`` because
        keys are unique within a block: every slot gets exactly one add.
        """
        if len(keys) == 0:
            return
        self._ensure_key_space(int(keys.max()))
        slots = self._slot_table[keys]
        fresh = np.nonzero(slots == -1)[0]
        if len(fresh):
            count = len(fresh)
            self._ensure_capacity(self.n + count)
            new_slots = np.arange(self.n, self.n + count, dtype=np.int64)
            new_keys = keys[fresh]
            self._slot_table[new_keys] = new_slots
            self.keys[self.n : self.n + count] = new_keys
            # New accumulators start at the scalar defaults (0, 0, -inf).
            self.values[new_slots] = 0.0
            self.weights[new_slots] = 0.0
            self.max_et[new_slots] = float("-inf")
            self.max_pt[new_slots] = float("-inf")
            self.n += count
            slots[fresh] = new_slots
        self.values[slots] += value * weights
        self.weights[slots] += weights
        self.max_et[slots] = np.maximum(self.max_et[slots], event_time)
        if ingest_time is not None:
            self.max_pt[slots] = np.maximum(self.max_pt[slots], ingest_time)

    def lose_fraction_fold(self, lost: float, fraction: float) -> float:
        """Scale every accumulator by ``1 - fraction``; fold the loss.

        Same per-accumulator operations, in slot (== insertion) order,
        as the scalar ``lose_fraction`` inner loop.
        """
        n = self.n
        if n == 0:
            return lost
        keep = 1.0 - fraction
        lost = fold_add(lost, self.weights[:n] * fraction)
        self.weights[:n] *= keep
        self.values[:n] *= keep
        return lost

    def materialize(self) -> Dict[int, WindowAccumulator]:
        """Expand to the scalar ``by_key`` dict, in slot order."""
        by_key: Dict[int, WindowAccumulator] = {}
        n = self.n
        keys = self.keys
        values = self.values
        weights = self.weights
        max_et = self.max_et
        max_pt = self.max_pt
        for i in range(n):
            acc = WindowAccumulator()
            acc.value = float(values[i])
            acc.weight = float(weights[i])
            acc.max_event_time = float(max_et[i])
            acc.max_processing_time = float(max_pt[i])
            by_key[int(keys[i])] = acc
        return by_key


class ColumnarWindowStore(KeyedWindowStore):
    """Block-at-a-time :class:`KeyedWindowStore` (bitwise twin).

    ``_windows`` maps window index to :class:`_WindowCols` instead of a
    per-key dict; ``ready_indices``/``open_indices``/ledger attributes
    are inherited.  ``close`` materializes the scalar representation so
    downstream output assembly is shared with the scalar path.
    """

    def __init__(self, window: WindowSpec, key_space_hint: int = 64) -> None:
        super().__init__(window)
        self._key_space_hint = key_space_hint

    def add(self, record: Record) -> int:
        return self.add_block(as_block(record))

    def add_block(self, block: RecordBlock) -> int:
        """Fold a block into all windows containing its event time.

        The scalar equivalent is ``for each cohort: self.add(record)``;
        cohorts of one block share an event time, so the window range,
        missed count and first-open window are computed once and the
        ledger folds run over the cohort weights in order.
        """
        n_cohorts = len(block)
        if n_cohorts == 0:
            return 0
        first, last = self.window.window_index_range(block.event_time)
        updates_per = 0
        missed = 0
        first_open: Optional[int] = None
        for idx in range(first, last + 1):
            if self._closed_through is not None and idx <= self._closed_through:
                missed += 1
                continue
            if first_open is None:
                first_open = idx
            cols = self._windows.get(idx)
            if cols is None:
                cols = _WindowCols(self._key_space_hint)
                self._windows[idx] = cols
            cols.add_cohorts(
                block.keys,
                block.weights,
                block.value,
                block.event_time,
                block.ingest_time,
            )
            updates_per += 1
        if updates_per:
            self.total_buffered_weight = fold_add(
                self.total_buffered_weight, block.weights
            )
        if missed:
            self.dropped_weight = fold_add(
                self.dropped_weight,
                block.weights * (missed / self.window.windows_per_event),
            )
        self.updates += updates_per * n_cohorts
        if updates_per:
            # Scalar adds w * (updates/wpe) per cohort unconditionally,
            # but with zero updates that is `+= 0.0` -- an exact no-op
            # for the non-negative ledger, so it is safe to skip.
            self.admitted_weight = fold_add(
                self.admitted_weight,
                block.weights
                * (updates_per / self.window.windows_per_event),
            )
        if block.traces:
            for _, trace in block.traces:
                if first_open is None:
                    trace.drop()
                else:
                    self._traces.setdefault(first_open, []).append(trace)
            block.traces = []
        return updates_per * n_cohorts

    def close(
        self, index: int, at_time: Optional[float] = None
    ) -> WindowContents:
        cols = self._windows.pop(index, None)
        per_key = cols.materialize() if cols is not None else {}
        traces = self._traces.pop(index, [])
        if traces and at_time is not None:
            for trace in traces:
                trace.mark("closed", at_time)
        contents = WindowContents(
            index=index,
            end_time=self.window.window_end(index),
            start_time=self.window.window_start(index),
            by_key=per_key,
            traces=traces,
        )
        if self._closed_through is None or index > self._closed_through:
            self._closed_through = index
        released = contents.total_weight / self.window.windows_per_event
        self.closed_weight += released
        self.total_buffered_weight = max(
            0.0, self.total_buffered_weight - released
        )
        return contents

    def stored_weight(self) -> float:
        # Scalar: builtin sum over (window insertion order, key
        # insertion order) -- the same chained strict left fold.
        total = 0.0
        for cols in self._windows.values():
            total = fold_add(total, cols.weights[: cols.n])
        return total

    def lose_fraction(self, fraction: float) -> float:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        lost = 0.0
        for cols in self._windows.values():
            lost = cols.lose_fraction_fold(lost, fraction)
        self.lost_weight += lost / self.window.windows_per_event
        return lost


class ColumnarJoinStore(JoinWindowStore):
    """Block-at-a-time :class:`JoinWindowStore`: columnar per side.

    ``ready_indices``/``close``/``stored_weight``/``lose_fraction``
    delegate to the sides and are inherited unchanged.
    """

    def __init__(self, window: WindowSpec, key_space_hint: int = 64) -> None:
        super().__init__(window)
        self.purchases = ColumnarWindowStore(window, key_space_hint)
        self.ads = ColumnarWindowStore(window, key_space_hint)

    def add_block(self, block: RecordBlock) -> int:
        if block.stream == PURCHASES:
            return self.purchases.add_block(block)
        if block.stream == ADS:
            return self.ads.add_block(block)
        raise ValueError(f"block from unknown stream {block.stream!r}")


class ColumnarBatchPartials(BatchPartialAggregator):
    """Block-at-a-time :class:`BatchPartialAggregator` (Spark batches).

    Accumulates into :class:`_WindowCols` during the batch and
    materializes the scalar partials dict at :meth:`drain`, so the
    (scalar) :class:`WindowedPartialMerger` absorbs byte-identical
    partials in byte-identical iteration order.
    """

    def __init__(self, window: WindowSpec, key_space_hint: int = 64) -> None:
        super().__init__(window)
        self._cols: Dict[int, _WindowCols] = {}
        self._key_space_hint = key_space_hint

    def add(self, record: Record) -> int:
        return self.add_block(as_block(record))

    def add_block(self, block: RecordBlock) -> int:
        n_cohorts = len(block)
        if n_cohorts == 0:
            return 0
        first, last = self.window.window_index_range(block.event_time)
        windows = 0
        for idx in range(first, last + 1):
            cols = self._cols.get(idx)
            if cols is None:
                cols = _WindowCols(self._key_space_hint)
                self._cols[idx] = cols
            cols.add_cohorts(
                block.keys,
                block.weights,
                block.value,
                block.event_time,
                block.ingest_time,
            )
            windows += 1
        self.batch_weight = fold_add(self.batch_weight, block.weights)
        if block.traces:
            for _, trace in block.traces:
                self._traces.setdefault(first, []).append(trace)
            block.traces = []
        return windows * n_cohorts

    def drain(self) -> Dict[int, Dict[int, WindowAccumulator]]:
        partials = {
            idx: cols.materialize() for idx, cols in self._cols.items()
        }
        self._cols = {}
        self._partials = {}
        self.batch_weight = 0.0
        return partials
