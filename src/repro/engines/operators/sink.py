"""The SUT output (sink) operator.

The paper measures latency "at the sink operator of the SUT" (Section
III-C): the sink is where an output tuple's emission time is fixed and
where the driver-side collector observes it.  The sink itself holds no
measurement logic beyond counting -- keeping measurement outside the SUT
is the point of the paper's driver/SUT separation -- it simply forwards
emitted tuples to the collector callback installed by the driver.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.records import OutputRecord

Collector = Callable[[List[OutputRecord]], None]


class Sink:
    """Forwards output tuples to the driver's collector."""

    def __init__(self, collector: Optional[Collector] = None) -> None:
        self._collector = collector
        self.emitted_tuples = 0
        self.emitted_weight = 0.0
        self.emitted_bytes = 0.0

    def attach(self, collector: Collector) -> None:
        self._collector = collector

    def emit(self, outputs: List[OutputRecord], bytes_per_tuple: float) -> None:
        """Emit a bundle of output tuples produced at the same instant."""
        if not outputs:
            return
        self.emitted_tuples += len(outputs)
        weight = sum(o.weight for o in outputs)
        self.emitted_weight += weight
        self.emitted_bytes += weight * bytes_per_tuple
        if self._collector is not None:
            self._collector(outputs)
