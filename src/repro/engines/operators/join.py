"""Windowed equi-join of the purchases and ads streams.

Listing 1's join query: purchases and ads over the same sliding window,
matched on ``(userID, gemPackID)`` (collapsed to one integer key by the
workload generator).

Latency semantics (Section IV, Figure 2): "In a windowed join operation,
the containing tuples' event-time is set to be the maximum event-time of
their window.  Afterwards, each join output is assigned the maximum
event-time of its matching tuples."  Output tuples therefore carry the
maximum of the two windows' event-time maxima (in Figure 2, time=600 =
max(600, 500)), and analogously for processing time.

Selectivity: the expected number of output tuples per ingested purchase
event.  The paper reduced it so that sink/network traffic would not mask
engine behaviour; output weight is distributed over keys present on both
sides, proportionally to the purchase weight.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.records import ADS, PURCHASES, OutputRecord, Record
from repro.engines.operators.window import KeyedWindowStore, WindowContents
from repro.workloads.queries import WindowSpec


class JoinWindowStore:
    """Two keyed window stores, one per input stream."""

    def __init__(self, window: WindowSpec) -> None:
        self.window = window
        self.purchases = KeyedWindowStore(window)
        self.ads = KeyedWindowStore(window)

    def add(self, record: Record) -> int:
        """Route a record to its side's store; returns keyed updates."""
        if record.stream == PURCHASES:
            return self.purchases.add(record)
        if record.stream == ADS:
            return self.ads.add(record)
        raise ValueError(f"record from unknown stream {record.stream!r}")

    def ready_indices(self, watermark: float) -> List[int]:
        """Windows complete on *both* sides at the given watermark."""
        ready = set(self.purchases.ready_indices(watermark))
        ready |= set(self.ads.ready_indices(watermark))
        return sorted(ready)

    def close(self, index: int, at_time=None) -> "ClosedJoinWindow":
        return ClosedJoinWindow(
            index=index,
            purchases=self.purchases.close(index, at_time=at_time),
            ads=self.ads.close(index, at_time=at_time),
        )

    def stored_weight(self) -> float:
        """Total buffered event weight across both build sides."""
        return self.purchases.stored_weight() + self.ads.stored_weight()

    def lose_fraction(self, fraction: float) -> float:
        """Discard a fraction of both sides' open window contents."""
        return self.purchases.lose_fraction(fraction) + self.ads.lose_fraction(
            fraction
        )


class ClosedJoinWindow:
    """Both sides of one closed window, ready to be joined."""

    def __init__(
        self, index: int, purchases: WindowContents, ads: WindowContents
    ) -> None:
        self.index = index
        self.purchases = purchases
        self.ads = ads

    @property
    def end_time(self) -> float:
        return self.purchases.end_time

    @property
    def total_weight(self) -> float:
        return self.purchases.total_weight + self.ads.total_weight

    @property
    def max_event_time(self) -> float:
        """Maximum event-time across both windows (Figure 2 semantics)."""
        return max(self.purchases.max_event_time, self.ads.max_event_time)

    @property
    def max_processing_time(self) -> float:
        return max(
            self.purchases.max_processing_time, self.ads.max_processing_time
        )


def join_window_outputs(
    closed: ClosedJoinWindow,
    selectivity: float,
    emit_time: float,
) -> List[OutputRecord]:
    """Join one closed window pair into output tuples.

    For every key present on both sides, the output weight is the key's
    share (by purchase weight) of ``selectivity * total purchase
    weight``.  All outputs of the window carry the window-level
    max-event-time anchor, per the paper's join latency definition.
    """
    if selectivity < 0:
        raise ValueError(f"selectivity must be >= 0, got {selectivity}")
    p_keys: Dict[int, float] = {
        key: acc.weight for key, acc in closed.purchases.by_key.items()
    }
    a_keys = closed.ads.by_key
    matched_purchase_weight = sum(
        weight for key, weight in p_keys.items() if key in a_keys
    )
    if matched_purchase_weight <= 0 or selectivity == 0:
        return []
    total_output_weight = selectivity * closed.purchases.total_weight
    event_time = closed.max_event_time
    processing_time = closed.max_processing_time
    traces_by_key = None
    all_traces = closed.purchases.traces + closed.ads.traces
    if all_traces:
        traces_by_key = {}
        for trace in all_traces:
            traces_by_key.setdefault(trace.key, []).append(trace)
    outputs = []
    for key, p_weight in p_keys.items():
        a_acc = a_keys.get(key)
        if a_acc is None:
            continue
        out_weight = total_output_weight * (p_weight / matched_purchase_weight)
        if out_weight <= 0:
            continue
        outputs.append(
            OutputRecord(
                key=key,
                value=closed.purchases.by_key[key].value,
                event_time=event_time,
                processing_time=processing_time,
                emit_time=emit_time,
                weight=out_weight,
                window_end=closed.end_time,
                # Traces from either side of the window whose key joined
                # (an unmatched key's trace stays incomplete -- its
                # events produced no output).
                traces=(
                    traces_by_key.pop(key, None)
                    if traces_by_key is not None
                    else None
                ),
            )
        )
    return outputs
