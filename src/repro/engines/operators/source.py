"""The SUT-side source operator.

Sources pull from the driver queues (round-robin, so no queue starves),
stamp every record with its **ingest time** -- the anchor of
processing-time latency (Definition 2: "the time that the event has
reached the input operator of the streaming system") -- and maintain the
engine's ingestion watermark, i.e. the event-time through which *all*
queues have been consumed.  Windows may only close once the watermark
passes their end: under backpressure the watermark lags generation time,
which is precisely how queue-waiting time surfaces in event-time latency
while staying invisible to processing-time latency (Experiment 6).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.batch import RecordBlock, as_block, fold_sub
from repro.core.queues import QueueSet
from repro.core.records import Record


class SourceSet:
    """Round-robin puller over all driver queues."""

    def __init__(self, queues: QueueSet) -> None:
        self._queues = queues
        self._next = 0
        self._disconnected: Dict[int, float] = {}

    def disconnect(self, queue_index: int, until: float) -> None:
        """Make one queue unreachable until the given time (an injected
        transient network fault, see
        :class:`repro.faults.schedule.QueueDisconnect`).  While a queue
        is disconnected its partition backlogs and the watermark stalls;
        after reconnect the source drains the stranded backlog."""
        index = queue_index % len(self._queues)
        self._disconnected[index] = max(
            self._disconnected.get(index, until), until
        )

    def pull(self, max_weight: float, ingest_time: float) -> List[Record]:
        """Pull up to ``max_weight`` events across queues, stamping them.

        The budget is spread round-robin in small rounds so that one
        deep queue cannot monopolise ingestion (real sources poll their
        partitions fairly).
        """
        if max_weight <= 0:
            return []
        pulled: List[Record] = []
        remaining = max_weight
        n = len(self._queues)
        share = max(1.0, max_weight / n)
        idle_rounds = 0
        while remaining > 1e-9 and idle_rounds < n:
            index = self._next
            queue = self._queues.queues[index]
            self._next = (self._next + 1) % n
            if self._disconnected:
                until = self._disconnected.get(index)
                if until is not None:
                    if ingest_time < until:
                        idle_rounds += 1
                        continue
                    del self._disconnected[index]
            batch = queue.pull(min(share, remaining))
            if not batch:
                idle_rounds += 1
                continue
            idle_rounds = 0
            for record in batch:
                record.ingest_time = ingest_time
                remaining -= record.weight
                if record.trace is not None:
                    record.trace.mark("ingested", ingest_time)
            pulled.extend(batch)
        return pulled

    def pull_batch(
        self, max_weight: float, ingest_time: float
    ) -> List[RecordBlock]:
        """Columnar :meth:`pull`: same round-robin ladder, block output.

        Bitwise-identical to the scalar pull over the expanded cohort
        sequence: the per-queue budgets, the budget countdown (a strict
        left fold over each batch's cohort weights) and the trace marks
        all replay the scalar loop.  Stray Records from mixed queues are
        wrapped as single-cohort blocks so engines only see blocks.
        """
        if max_weight <= 0:
            return []
        pulled: List[RecordBlock] = []
        remaining = max_weight
        n = len(self._queues)
        share = max(1.0, max_weight / n)
        idle_rounds = 0
        while remaining > 1e-9 and idle_rounds < n:
            index = self._next
            queue = self._queues.queues[index]
            self._next = (self._next + 1) % n
            if self._disconnected:
                until = self._disconnected.get(index)
                if until is not None:
                    if ingest_time < until:
                        idle_rounds += 1
                        continue
                    del self._disconnected[index]
            batch = queue.pull_blocks(min(share, remaining))
            if not batch:
                idle_rounds += 1
                continue
            idle_rounds = 0
            for item in batch:
                block = (
                    item
                    if isinstance(item, RecordBlock)
                    else as_block(item)
                )
                block.ingest_time = ingest_time
                remaining = fold_sub(remaining, block.weights)
                for _, trace in block.traces:
                    trace.mark("ingested", ingest_time)
                pulled.append(block)
        return pulled

    def shed(self, max_weight: float, drop_oldest: bool = True) -> float:
        """Shed up to ``max_weight`` queued events across all queues.

        The shed budget is spread proportionally to each queue's
        backlog so the per-partition latency bound degrades evenly
        (shedding one deep queue to zero while another overflows would
        defeat the bound).  Returns the weight actually shed.
        """
        if max_weight <= 0:
            return 0.0
        total = self._queues.total_queued_weight
        if total <= 0:
            return 0.0
        shed = 0.0
        for queue in self._queues.queues:
            if queue.queued_weight <= 0:
                continue
            share = max_weight * (queue.queued_weight / total)
            shed += queue.shed(share, drop_oldest=drop_oldest)
        return shed

    @property
    def watermark(self) -> float:
        """Event-time through which every queue has been ingested."""
        return self._queues.watermark

    @property
    def backlog_weight(self) -> float:
        return self._queues.total_queued_weight
