"""Operator state backends and memory accounting.

Experiment 3 (large windows) and Experiment 4 (skew) hinge on how much
state an engine keeps and what happens when it outgrows memory:

- Storm buffers raw tuples and, without user-supplied "advanced data
  structures that can spill to disk", hits memory exceptions;
- Flink and Spark "have built-in data structures that can spill to disk
  when needed", at a throughput cost;
- Spark's window caching "consumes the memory aggressively", spilling the
  block-manager memory store to disk -- which is the pathology the paper
  fixed with an Inverse Reduce Function.

:class:`StateBackend` tracks bytes of live operator state against a heap
budget.  When the budget is exceeded it either raises
:class:`~repro.sim.failures.OutOfMemory` (no spill support) or enters a
*spilling* regime that multiplies processing costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cluster import ClusterSpec
from repro.sim.failures import OutOfMemory


@dataclass(frozen=True)
class StatePolicy:
    """How an engine's operator state behaves under memory pressure."""

    can_spill: bool
    heap_fraction: float = 0.4
    """Fraction of worker RAM available for operator state (the rest is
    the engine runtime, buffers, and JVM overhead)."""
    spill_slowdown: float = 2.5
    """Multiplier on per-event processing cost while spilling."""


class StateBackend:
    """Byte-level accounting of one engine's operator state.

    The engine charges bytes when it buffers data (window contents,
    cached RDDs, join build sides) and releases them when windows close
    or caches are evicted.  ``cost_multiplier`` is 1.0 in memory and
    ``spill_slowdown`` while any state is spilled.
    """

    def __init__(self, cluster: ClusterSpec, policy: StatePolicy) -> None:
        self._policy = policy
        self.budget_bytes = cluster.worker_ram_bytes * policy.heap_fraction
        self.used_bytes = 0.0
        self.spilled_bytes = 0.0
        self.peak_bytes = 0.0
        self.oom_headroom = 1.1
        """Hard-failure threshold: state beyond budget * headroom kills a
        non-spilling engine even before the gradual pressure would."""

    @property
    def policy(self) -> StatePolicy:
        return self._policy

    def set_policy(self, policy: StatePolicy) -> None:
        """Swap the memory policy (e.g. a user-supplied spillable
        structure replacing Storm's default in-memory window state)."""
        self._policy = policy

    @property
    def spilling(self) -> bool:
        return self.spilled_bytes > 0

    @property
    def cost_multiplier(self) -> float:
        """Per-event cost multiplier given current memory pressure."""
        return self._policy.spill_slowdown if self.spilling else 1.0

    @property
    def in_memory_bytes(self) -> float:
        return self.used_bytes - self.spilled_bytes

    def charge(self, nbytes: float, at_time: float = float("nan")) -> None:
        """Account ``nbytes`` of new state; may spill or raise OutOfMemory."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        if self.used_bytes <= self.budget_bytes:
            return
        if not self._policy.can_spill:
            if self.used_bytes > self.budget_bytes * self.oom_headroom:
                raise OutOfMemory(
                    f"operator state {self.used_bytes / 1e9:.2f} GB exceeds "
                    f"heap budget {self.budget_bytes / 1e9:.2f} GB "
                    f"(no spill-to-disk support)",
                    at_time=at_time,
                )
            return
        self.spilled_bytes = self.used_bytes - self.budget_bytes

    def release(self, nbytes: float) -> None:
        """Account ``nbytes`` of state freed (window closed, cache evicted)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.used_bytes = max(0.0, self.used_bytes - nbytes)
        if self.used_bytes <= self.budget_bytes:
            self.spilled_bytes = 0.0
        else:
            self.spilled_bytes = self.used_bytes - self.budget_bytes

    def utilisation(self) -> float:
        """Used state as a fraction of the heap budget."""
        if self.budget_bytes <= 0:
            return 0.0
        return self.used_bytes / self.budget_bytes
