"""Cost model and calibration constants for the engine simulations.

A performance model needs numbers.  This module is the *only* place
where the paper's published measurements are used to fit constants; the
rest of the codebase treats the values below as a hardware/software
characterisation, and all benchmark results (tables, figures,
sustainable-throughput numbers) are *measured* by running the framework
against the simulated engines -- never copied from this file.

The model decomposes per-event work into

- ``pipeline_cost_us``: core-microseconds per event for the freely
  parallelisable stages (deserialisation, source, shuffle, ack-ing);
- ``keyed_cost_us``: core-microseconds per event for the keyed window
  stage, which in Flink and Storm runs on the single slot owning the
  key's key-group (this term produces the paper's Experiment 4 result
  that single-key workloads do not scale);
- ``bulk_emit_cost_us``: core-microseconds per *stored* event paid when
  a window is evaluated in bulk at close time (Storm's window operator,
  Flink's windowed join probe).  Zero for incremental aggregation.
- ``scaling_efficiency``: cluster-size-dependent efficiency relative to
  linear scaling of core count (coordination, shuffle fan-out, stragglers).

How the constants were fitted (all from the paper's tables):

- total per-event cost at 2 workers = 2 * 16 cores * 1e6 us /
  sustainable_throughput(2-node); e.g. Storm aggregation:
  32e6 / 0.40e6 = 80 us/event (Table I).
- scaling_efficiency(n) = observed_throughput(n) / (linear projection
  from the 2-node cost); e.g. Storm 8-node: 0.99 / (0.40 * 4) = 0.619.
- keyed_cost_us = 1e6 / single-slot throughput under single-key skew
  (Experiment 4): Flink 1e6/0.48e6 = 2.08 us, Storm 1e6/0.20e6 = 5 us.
- Flink's CPU capacity at 2 workers is set marginally above the network
  bound (1.25 M/s vs 1.202 M/s) because the paper reports Flink at the
  network limit for every cluster size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.sim.cluster import ClusterSpec

AGGREGATION = "aggregation"
JOIN = "join"
QUERY_KINDS = (AGGREGATION, JOIN)


def _interp_efficiency(table: Mapping[int, float], workers: int) -> float:
    """Piecewise-linear interpolation of a {workers: efficiency} table.

    Extrapolation is clamped to the boundary values: efficiency is a
    bounded physical quantity and the calibration points (2, 4, 8) cover
    the paper's sweep.
    """
    if workers in table:
        return table[workers]
    points = sorted(table.items())
    if workers <= points[0][0]:
        return points[0][1]
    if workers >= points[-1][0]:
        return points[-1][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= workers <= x1:
            frac = (workers - x0) / (x1 - x0)
            return y0 + frac * (y1 - y0)
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class CostModel:
    """Per-event cost characterisation of one engine for one query kind."""

    engine: str
    query_kind: str
    pipeline_cost_us: float
    keyed_cost_us: float
    bulk_emit_cost_us: float
    scaling_efficiency: Mapping[int, float]
    keyed_stage_parallel: bool = False
    """True when the keyed stage spreads over all slots even under skew
    (Spark's tree-aggregate / tree-reduce communication pattern)."""
    skew_capacity_factor: float = 1.0
    """Multiplier on total capacity under extreme skew for engines with a
    parallel keyed stage (tree-aggregation has coordination overhead)."""
    state_bytes_per_event: float = 64.0
    """Operator-state bytes per buffered event (drives Experiment 3)."""

    @property
    def total_cost_us(self) -> float:
        return self.pipeline_cost_us + self.keyed_cost_us

    def efficiency(self, workers: int) -> float:
        return _interp_efficiency(self.scaling_efficiency, workers)

    def cpu_capacity_events_per_s(self, cluster: ClusterSpec) -> float:
        """Steady-state CPU-bound ingest capacity of a deployment."""
        budget_us = cluster.worker_cores * 1e6 * self.efficiency(cluster.workers)
        return budget_us / self.total_cost_us

    def keyed_slot_capacity_events_per_s(self) -> float:
        """Events/s one slot's core can push through the keyed stage.

        Under single-key skew this caps the whole deployment for engines
        whose keyed stage is not parallel (Flink, Storm) -- Experiment 4.
        """
        if self.keyed_cost_us <= 0:
            return float("inf")
        return 1e6 / self.keyed_cost_us

    def skew_capacity_events_per_s(
        self, cluster: ClusterSpec, hot_fraction: float
    ) -> float:
        """Capacity when ``hot_fraction`` of events hit the hottest key."""
        base = self.cpu_capacity_events_per_s(cluster)
        if self.keyed_stage_parallel:
            # Tree-aggregate spreads the hot key across slots; skew only
            # costs coordination overhead.
            if hot_fraction >= 0.5:
                return base * self.skew_capacity_factor
            return base
        slot = self.keyed_slot_capacity_events_per_s()
        if hot_fraction <= 0:
            return base
        return min(base, slot / hot_fraction)

    def bulk_emit_delay_s(
        self, stored_weight: float, cluster: ClusterSpec
    ) -> float:
        """Time to evaluate a window of ``stored_weight`` events in bulk."""
        if self.bulk_emit_cost_us <= 0 or stored_weight <= 0:
            return 0.0
        budget_us_per_s = (
            cluster.worker_cores * 1e6 * self.efficiency(cluster.workers)
        )
        return stored_weight * self.bulk_emit_cost_us / budget_us_per_s


# ---------------------------------------------------------------------------
# Calibrated models.  Sources for every constant are given inline.
# ---------------------------------------------------------------------------

_MODELS: Dict[Tuple[str, str], CostModel] = {}


def _register(model: CostModel) -> None:
    _MODELS[(model.engine, model.query_kind)] = model


# --- Storm -----------------------------------------------------------------
# Table I: 0.40 / 0.69 / 0.99 M/s => cost(2) = 32e6/0.40e6 = 80 us.
# eff(4) = 0.69/0.80 = 0.8625; eff(8) = 0.99/1.60 = 0.61875.
# Experiment 4: 0.20 M/s single-key => keyed = 5 us; pipeline = 75 us.
# Window results are produced in bulk at window close (Section VI,
# Experiment 4 discussion: "one implementation of window reduce operator
# can output the results continuously, while another can chose to perform
# so in bulk") -- bulk cost tuned to yield Table II's ~1.4 s 2-node avg.
# Storm buffers whole tuples in window state with no spill-to-disk
# (Experiment 3: "Otherwise, we encountered memory exceptions").
_register(
    CostModel(
        engine="storm",
        query_kind=AGGREGATION,
        pipeline_cost_us=75.0,
        keyed_cost_us=5.0,
        bulk_emit_cost_us=14.0,
        scaling_efficiency={2: 1.0, 4: 0.8625, 8: 0.61875},
        state_bytes_per_event=640.0,
    )
)

# Storm has no built-in windowed join; the paper implemented a naive join
# measuring 0.14 M/s and 2.3 s average latency on 2 nodes, with memory
# issues and topology stalls on larger clusters (Experiment 2).
# cost(2) = 32e6/0.14e6 = 228.6 us.  The naive join buffers both input
# windows fully (very heavy per-event state).
_register(
    CostModel(
        engine="storm",
        query_kind=JOIN,
        pipeline_cost_us=212.0,
        keyed_cost_us=16.6,
        bulk_emit_cost_us=90.0,
        scaling_efficiency={2: 1.0, 4: 0.85, 8: 0.60},
        state_bytes_per_event=560.0,
    )
)

# --- Spark -----------------------------------------------------------------
# Table I: 0.38 / 0.64 / 0.91 M/s => cost(2) = 32e6/0.38e6 = 84.2 us.
# eff(4) = 0.64/0.76 = 0.842; eff(8) = 0.91/1.52 = 0.599.
# Keyed stage uses tree-reduce/tree-aggregate => parallel under skew
# (Experiment 4: Spark sustains 0.53 M/s at 4 nodes on a single key,
# 0.53/0.64 = 0.83 of its unskewed capacity).
# Mini-batch jobs evaluate windows from batch-level partial aggregates;
# there is no per-window bulk pass (costs are inside the batch job).
_register(
    CostModel(
        engine="spark",
        query_kind=AGGREGATION,
        pipeline_cost_us=80.2,
        keyed_cost_us=4.0,
        bulk_emit_cost_us=0.0,
        scaling_efficiency={2: 1.0, 4: 0.842, 8: 0.599},
        keyed_stage_parallel=True,
        skew_capacity_factor=0.83,
        state_bytes_per_event=200.0,
    )
)

# Table III: 0.36 / 0.63 / 0.94 M/s => cost(2) = 32e6/0.36e6 = 88.9 us.
# eff(4) = 0.63/0.72 = 0.875; eff(8) = 0.94/1.44 = 0.653.
# Under skew the join "exhibits very high latencies" but survives --
# memory pressure is modelled through the heavier per-event state.
_register(
    CostModel(
        engine="spark",
        query_kind=JOIN,
        pipeline_cost_us=82.9,
        keyed_cost_us=6.0,
        bulk_emit_cost_us=0.0,
        scaling_efficiency={2: 1.0, 4: 0.875, 8: 0.653},
        keyed_stage_parallel=True,
        skew_capacity_factor=0.55,
        state_bytes_per_event=420.0,
    )
)

# --- Flink -----------------------------------------------------------------
# Table I reports 1.2 M/s at every size, network-bound from 4 nodes; the
# 2-node CPU capacity is set just above the wire limit:
# cost(2) = 32e6/1.25e6 = 25.6 us.
# Experiment 4: 0.48 M/s single-key => keyed = 1e6/0.48e6 = 2.083 us.
# Aggregates are computed on the fly (incremental) => no bulk pass and
# tiny per-event state (per-key accumulators only).
_register(
    CostModel(
        engine="flink",
        query_kind=AGGREGATION,
        pipeline_cost_us=23.5,
        keyed_cost_us=2.083,
        bulk_emit_cost_us=0.0,
        scaling_efficiency={2: 1.0, 4: 0.90, 8: 0.80},
        state_bytes_per_event=2.0,
    )
)

# Table III: 0.85 / 1.12 / 1.19 M/s; 8-node is network-bound (larger
# result traffic), so CPU efficiencies are fitted at 2 and 4 nodes:
# cost(2) = 32e6/0.85e6 = 37.6 us; eff(4) = 1.12/1.70 = 0.659.
# The windowed join evaluates at window close (hash-probe over the
# window) => bulk cost, fitted to Table IV's ~4.3 s 2-node average.
# Join state buffers both windows (Experiment 4: under single-key skew
# "Flink often becomes unresponsive" -- single-slot keyed stage plus
# state blow-up).
_register(
    CostModel(
        engine="flink",
        query_kind=JOIN,
        pipeline_cost_us=29.6,
        keyed_cost_us=8.0,
        bulk_emit_cost_us=18.0,
        scaling_efficiency={2: 1.0, 4: 0.659, 8: 0.50},
        state_bytes_per_event=180.0,
    )
)


def register_cost_model(model: CostModel) -> None:
    """Register the performance characterisation of a custom engine.

    Part of the pluggable-SUT interface: a user-supplied engine with
    ``name="myengine"`` becomes benchmarkable once a model is registered
    for each query kind it supports (or it can override
    ``StreamingEngine._resolve_cost_model`` instead).
    """
    _register(model)


def cost_model_for(engine: str, query_kind: str) -> CostModel:
    """The calibrated cost model for (engine, query kind)."""
    key = (engine.lower(), query_kind)
    try:
        return _MODELS[key]
    except KeyError:
        raise ValueError(
            f"no cost model for engine={engine!r}, query_kind={query_kind!r}; "
            f"have {sorted(_MODELS)}"
        ) from None


def registered_models() -> Dict[Tuple[str, str], CostModel]:
    """A copy of the calibration registry (for tests and docs)."""
    return dict(_MODELS)
