"""System-under-test models: Storm, Spark Streaming, and Flink.

Each engine implements the :class:`repro.engines.base.StreamingEngine`
interface -- the "generic interface that users can plug into any stream
data processing system" that the paper lists as future work.  The three
engine models reproduce the architectural traits the paper identifies as
the causes of the measured differences:

- :mod:`repro.engines.storm` -- tuple-at-a-time processing, bulk window
  evaluation, immature on/off backpressure (oscillating ingest, possible
  topology stalls), naive windowed join, no spill-to-disk state.
- :mod:`repro.engines.spark` -- mini-batch (DStream) execution: batch
  and block intervals, DAG-scheduler delay, blocking stage barriers,
  PID-style rate-controller backpressure, tree-aggregate under skew,
  window caching with an optional inverse-reduce function.
- :mod:`repro.engines.flink` -- pipelined execution with operator
  chaining, credit-based backpressure, and incremental (on-the-fly)
  window aggregation that cannot share state across sliding windows.

The quantitative constants (per-event CPU costs, scaling-efficiency
curves) live in :mod:`repro.engines.calibration` and are fitted to the
paper's published measurements; everything else -- queueing, windows,
latency, backpressure dynamics, network saturation -- is emergent.
"""

from repro.engines.base import EngineConfig, StreamingEngine
from repro.engines.calibration import CostModel, cost_model_for, register_cost_model
from repro.engines.flink import FlinkConfig, FlinkEngine
from repro.engines.spark import SparkConfig, SparkEngine
from repro.engines.storm import StormConfig, StormEngine

ENGINES = {
    "storm": StormEngine,
    "spark": SparkEngine,
    "flink": FlinkEngine,
}


def engine_class(name: str):
    """Look up an engine class by its lowercase name."""
    try:
        return ENGINES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {sorted(ENGINES)}"
        ) from None


__all__ = [
    "ENGINES",
    "CostModel",
    "EngineConfig",
    "FlinkConfig",
    "FlinkEngine",
    "SparkConfig",
    "SparkEngine",
    "StormConfig",
    "StormEngine",
    "StreamingEngine",
    "cost_model_for",
    "engine_class",
    "register_cost_model",
]
