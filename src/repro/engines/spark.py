"""The Apache Spark Streaming 2.0.1 model.

Architectural traits reproduced (from the paper's analysis):

- **Mini-batch (DStream) execution**: events are received into blocks
  (``block_interval``) and processed in jobs fired every
  ``batch_interval`` (the paper uses 4 s, "as it can sustain the maximum
  throughput with this configuration").  All tuples of a batch share
  their fate, which is why Spark's latencies are the highest but the
  *tightest* of the three engines (Table II: "the tuples within the same
  batch have similar latencies").
- **DAG scheduler**: jobs run serially per output; "coordination and
  pipelining mini-batch jobs and their stages creates extra overhead";
  the scheduler delay couples with ingest spikes (Figure 11).
- **Rate-controller backpressure**: reacts per batch ("passing this
  information to upstream stages works in the order of job stage
  execution time"), so Spark briefly over-ingests, then throttles --
  Figure 9b's fluctuating pull rate.
- **Window caching**: without an inverse-reduce function, windowed
  results are recomputed/cached per batch over the whole window volume
  ("the cache operation consumes the memory aggressively"); the paper
  "managed to overcome this performance issue" by implementing an
  Inverse Reduce Function -- ``inverse_reduce=True`` here (Experiment 3).
- **Tree-reduce/tree-aggregate**: the keyed stage is parallelised even
  for a single hot key, which is why Spark is the only engine that
  scales under extreme skew (Experiment 4), at a small coordination
  penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Union
from collections import deque

from repro.autoscale.rescale import STYLE_MICRO_BATCH, RescaleSemantics
from repro.core.batch import RecordBlock, fold_add
from repro.core.records import Record
from repro.engines.backpressure import BackpressureMechanism, RateController
from repro.engines.base import (
    EngineConfig,
    StreamingEngine,
    windowed_conservation,
)
from repro.engines.operators.aggregate import (
    BatchPartialAggregator,
    WindowedPartialMerger,
    aggregation_outputs,
)
from repro.engines.operators.columnar import (
    ColumnarBatchPartials,
    ColumnarJoinStore,
)
from repro.engines.operators.join import JoinWindowStore, join_window_outputs
from repro.faults.checkpoint import RecoverySemantics
from repro.faults.guarantees import DeliveryGuarantee
from repro.workloads.queries import WindowedJoinQuery


@dataclass(frozen=True)
class SparkConfig(EngineConfig):
    """Spark-specific knobs on top of the common engine config.

    The inherited fields are re-declared with Spark's tuned defaults so
    that ``SparkConfig(inverse_reduce=True)`` and similar one-off
    overrides keep the engine's characteristics.
    """

    tick_interval_s: float = 0.05
    buffer_seconds: float = 8.0  # blocks of the current batch live in memory
    pipeline_delay_s: float = 0.1
    gc_rate_per_s: float = 0.025
    gc_pause_mean_s: float = 0.35
    gc_pause_sigma: float = 0.5
    emit_jitter_sigma: float = 0.08
    batch_interval_s: float = 4.0
    """The paper's batch size: "We use a four second batch-size for
    Spark, as it can sustain the maximum throughput with this
    configuration" (Experiment 1)."""
    block_interval_s: float = 0.2
    """Block interval for RDD partitioning; #partitions per mini-batch is
    bounded by batch_interval / block_interval (Section VI-A)."""
    scheduler_base_delay_s: float = 0.15
    scheduler_spike_rate_per_s: float = 0.01
    scheduler_spike_mean_s: float = 0.8
    """DAG-scheduler delay: a base plus occasional spikes (Figure 11)."""
    job_overhead_s: float = 0.2
    """Fixed per-job stage-coordination overhead (blocking barriers)."""
    burst_factor_base: float = 1.33
    burst_factor_per_worker: float = 0.045
    """Job processing rate relative to steady-state ingest capacity:
    burst = capacity * (base + per_worker * (workers - 2)); the growth
    with workers is the better RDD partitioning the paper credits for
    Spark's latency *decreasing* with cluster size (Table II)."""
    cache_cost_us_per_event: float = 3.0
    """Per-stored-event cost of caching/recomputing windowed state per
    batch when no inverse-reduce function is supplied."""
    inverse_reduce: bool = False
    """The paper's Inverse Reduce Function fix (Experiment 3)."""
    max_queued_jobs: int = 8
    """Beyond this many waiting jobs the trial is hopeless; ingest is
    choked hard by the controller anyway."""
    join_burst_factor: float = 1.10
    """Join jobs (CoGroupedRDD + Mapped/FlatMappedValuesRDD stages) run
    closer to the batch-interval limit than aggregations."""
    join_duration_jitter_sigma: float = 0.18
    """Lognormal sigma on join-job durations: the CoGroup stages wait on
    stragglers across partitions, so a meaningful share of join jobs
    overruns the batch interval even at sustainable load -- "the
    additional latency is due to tuples' waiting in the queue"
    (Experiment 2's Spark discussion)."""
    receiver_modulation: float = 0.12
    """Within-batch shaping of the receiver pull rate: blocks fill
    eagerly right after a batch fires and the block queue backs off as
    the batch ages (+/- this fraction around the mean) -- Figure 9b's
    batch-cadence fluctuation."""
    watermark_slack_s: float = 0.6
    """A batch's job closes windows ending up to this far beyond the
    ingestion watermark captured at the batch boundary.  Real DStream
    windows are batch-aligned: the batch ending at t computes windows
    ending at t even though the receiver observed events a fraction of a
    tick earlier.  Without slack, every window would slip into the next
    batch.  When the system lags by more than the slack, windows defer
    to later batches -- which is how queueing shows up in event-time
    latency."""


class _SparkJob:
    """One mini-batch job waiting for / running on the DAG scheduler."""

    __slots__ = (
        "batch_end",
        "volume",
        "partials",
        "traces",
        "watermark",
        "created_at",
        "sched_delay",
    )

    def __init__(
        self,
        batch_end,
        volume,
        partials,
        watermark,
        created_at,
        sched_delay,
        traces=None,
    ):
        self.batch_end = batch_end
        self.volume = volume
        self.partials = partials
        self.traces = traces
        self.watermark = watermark
        self.created_at = created_at
        self.sched_delay = sched_delay


class SparkEngine(StreamingEngine):
    """Mini-batch engine with rate-controller backpressure."""

    name = "spark"
    # Deterministic lineage recomputation of only the lost partitions --
    # no full-state transfer, no replay window: "Lopez et al. found
    # Spark the most robust to node failures", and exactly once.
    recovery_semantics = RecoverySemantics.LINEAGE_RECOMPUTE
    default_guarantee = DeliveryGuarantee.EXACTLY_ONCE
    # Rescale is nearly free: the next micro-batch's tasks simply
    # schedule over the new executor set (dynamic allocation), no
    # topology restart and no exposed data.
    rescale = RescaleSemantics(
        style=STYLE_MICRO_BATCH, provision_s=15.0, warmup_s=1.0
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not isinstance(self.config, SparkConfig):
            self.config = SparkConfig(**vars(self.config))  # type: ignore[arg-type]
        cfg: SparkConfig = self.config
        self._controller = RateController(batch_interval_s=cfg.batch_interval_s)
        self._is_join = isinstance(self.query, WindowedJoinQuery)
        hint = self.query.keys.num_keys
        if self._is_join:
            self._join_store = (
                ColumnarJoinStore(self.query.window, hint)
                if self._vector
                else JoinWindowStore(self.query.window)
            )
            self._batch_weight = 0.0
        else:
            self._partials = (
                ColumnarBatchPartials(self.query.window, hint)
                if self._vector
                else BatchPartialAggregator(self.query.window)
            )
            # The merger stays scalar in both modes: it absorbs the
            # drained (materialized) partials once per batch, off the
            # per-tick hot path.
            self._merger = WindowedPartialMerger(
                self.query.window, inverse_reduce=cfg.inverse_reduce
            )
        self._next_batch_end = self._align_up(self.sim.now, cfg.batch_interval_s)
        self._job_queue: Deque[_SparkJob] = deque()
        self._running_job: Optional[_SparkJob] = None
        self.windows_emitted = 0
        self.job_log: List[Dict[str, float]] = []
        """Per-job record: batch_end, sched_delay, duration, volume --
        the raw series behind Figure 11."""

    @staticmethod
    def _align_up(time: float, interval: float) -> float:
        import math

        return math.ceil((time + 1e-9) / interval) * interval

    @classmethod
    def default_config(cls) -> "SparkConfig":
        return SparkConfig()

    @classmethod
    def supports_spill(cls) -> bool:
        # "Spark will spill the memory store to disk once it is full."
        return True

    @classmethod
    def recommended_degradation(cls):
        # Micro-batching coarsens every reaction to the batch interval:
        # the admission ramp spans two batches (the PID controller needs
        # completed batches to re-learn the rate) and the delay bound
        # tolerates a couple of queued batches before shedding.
        from repro.recovery.degradation import DegradationPolicy

        interval = cls.default_config().batch_interval_s
        return DegradationPolicy(
            shed="oldest",
            max_queue_delay_s=2.0 * interval,
            readmission_ramp_s=2.0 * interval,
        )

    def _backpressure(self) -> BackpressureMechanism:
        return self._controller

    def _internal_backlog_weight(self) -> float:
        if self._is_join:
            return self._batch_weight
        return self._partials.batch_weight

    def _on_node_failure(self, lost_fraction: float) -> float:
        # The dead workers' partitions are re-derived from cached lineage
        # deterministically; the exposure is just those partitions' share
        # of the buffered mini-batch state.
        if self._is_join:
            stored = self._join_store.stored_weight() + self._batch_weight
        else:
            stored = self._merger.stored_weight() + self._partials.batch_weight
        return lost_fraction * stored

    def _modulate_ingest_budget(self, budget: float, dt: float) -> float:
        cfg: SparkConfig = self.config
        if cfg.receiver_modulation <= 0:
            return budget
        phase = (self.sim.now % cfg.batch_interval_s) / cfg.batch_interval_s
        # First half of the batch: eager block filling; second half: the
        # block queue backs off.  Mean multiplier is 1.0.
        factor = 1.0 + cfg.receiver_modulation * (1.0 if phase < 0.5 else -1.0)
        return budget * factor

    # -- receiving ----------------------------------------------------------

    def _process(self, records: List[Record], dt: float) -> None:
        if self._is_join:
            for record in records:
                self._join_store.add(record)
                self._batch_weight += record.weight
            self._update_state_usage(self._join_store.stored_weight())
        else:
            for record in records:
                self._partials.add(record)

    def _process_batch(self, blocks: List[RecordBlock], dt: float) -> None:
        if self._is_join:
            for block in blocks:
                self._join_store.add_block(block)
                self._batch_weight = fold_add(
                    self._batch_weight, block.weights
                )
            self._update_state_usage(self._join_store.stored_weight())
        else:
            for block in blocks:
                self._partials.add_block(block)

    # -- batch / job machinery ------------------------------------------------

    def _cache_retention_factor(self) -> float:
        """Multiplier on retained state from per-batch window caching.

        Without an inverse-reduce function, every batch caches the
        intermediate windowed RDD; the retained copies scale with the
        number of batches a window spans.  "The cache operation consumes
        the memory aggressively ... Spark will spill the memory store to
        disk once it is full" (Experiment 3) -- the spill slowdown is
        what collapses Spark's large-window throughput.  With inverse
        reduce, only the running aggregate is retained.
        """
        cfg: SparkConfig = self.config
        if self._is_join or cfg.inverse_reduce:
            return 1.0
        span = self.query.window.size_s / cfg.batch_interval_s
        return max(1.0, 0.4 * span)

    def _on_tick_end(self, dt: float) -> None:
        if self.sim.now + 1e-9 >= self._next_batch_end:
            self._fire_batch()
        if not self._is_join:
            stored = self._merger.stored_weight() + self._partials.batch_weight
            self._update_state_usage(stored * self._cache_retention_factor())

    def _fire_batch(self) -> None:
        assert self.source is not None
        cfg: SparkConfig = self.config
        batch_end = self._next_batch_end
        self._next_batch_end = batch_end + cfg.batch_interval_s
        if self._is_join:
            volume = self._batch_weight
            partials = None
            traces = None
            self._batch_weight = 0.0
        else:
            volume = self._partials.batch_weight
            partials = self._partials.drain()
            traces = self._partials.drain_traces()
        job = _SparkJob(
            batch_end=batch_end,
            volume=volume,
            partials=partials,
            traces=traces,
            watermark=self.source.watermark,
            created_at=self.sim.now,
            sched_delay=self._sample_scheduler_delay(),
        )
        self._job_queue.append(job)
        if len(self._job_queue) >= cfg.max_queued_jobs:
            # The DStream job queue is saturated: the controller slams
            # the receiver rate so the scheduler can drain (the paper's
            # "queued mini-batch jobs will increase over time" failure
            # mode, pre-empted).
            self._controller.rate_limit = max(
                self._controller.min_rate, self._controller.rate_limit * 0.5
            )
        self._maybe_start_job()

    def _sample_scheduler_delay(self) -> float:
        cfg: SparkConfig = self.config
        delay = cfg.scheduler_base_delay_s * float(
            self.rng.lognormal(-0.02, 0.2)
        )
        # Occasional spikes; more likely with a loaded scheduler.
        spike_p = cfg.scheduler_spike_rate_per_s * cfg.batch_interval_s
        spike_p *= 1.0 + len(self._job_queue)
        if self.rng.random() < min(0.5, spike_p):
            delay += float(self.rng.exponential(cfg.scheduler_spike_mean_s))
        # Queued jobs inflate coordination time.
        delay *= 1.0 + 0.4 * len(self._job_queue)
        return delay

    def _maybe_start_job(self) -> None:
        if self._running_job is not None or not self._job_queue:
            return
        job = self._job_queue.popleft()
        self._running_job = job
        duration = self._job_duration(job)
        self.job_log.append(
            {
                "batch_end": job.batch_end,
                "sched_delay": job.sched_delay,
                "duration": duration,
                "volume": job.volume,
                "started_at": self.sim.now,
            }
        )
        self.sim.schedule(job.sched_delay + duration, self._complete_job, job, duration)

    def _job_duration(self, job: _SparkJob) -> float:
        cfg: SparkConfig = self.config
        capacity = self.cost.skew_capacity_events_per_s(
            self.cluster, self._hot_fraction
        )
        if self._is_join:
            burst = capacity * cfg.join_burst_factor
        else:
            burst = capacity * (
                cfg.burst_factor_base
                + cfg.burst_factor_per_worker * (self.cluster.workers - 2)
            )
        duration = cfg.job_overhead_s + job.volume / max(burst, 1.0)
        if not self._is_join and not cfg.inverse_reduce:
            # Recompute/cache the windowed state over the whole retained
            # volume -- the Experiment 3 pathology.
            stored = self._merger.stored_weight() + job.volume
            budget_us_per_s = (
                self.cluster.worker_cores
                * 1e6
                * self.cost.efficiency(self.cluster.workers)
            )
            duration += stored * cfg.cache_cost_us_per_event / budget_us_per_s
        duration *= self.state.cost_multiplier
        sigma = (
            cfg.join_duration_jitter_sigma if self._is_join else 0.06
        )
        duration *= float(self.rng.lognormal(-(sigma**2) / 2.0, sigma))
        return duration

    def _complete_job(self, job: _SparkJob, duration: float) -> None:
        if self.failed:
            return
        self._running_job = None
        self._emit_ready_windows(job)
        self._controller.on_batch_complete(
            processing_time_s=job.sched_delay + duration,
            batch_events=max(job.volume, 1.0),
            queued_jobs=len(self._job_queue),
        )
        self._maybe_start_job()

    def _emit_ready_windows(self, job: _SparkJob) -> None:
        assert self.sink is not None
        cfg: SparkConfig = self.config
        # Close windows the batch was responsible for: up to the batch
        # boundary, provided ingestion is within the slack of it.
        effective_watermark = min(
            job.watermark + cfg.watermark_slack_s,
            job.batch_end + 1e-9,
        ) - cfg.allowed_lateness_s
        emit_time = self.sim.now
        outputs = []
        if self._is_join:
            for index in self._join_store.ready_indices(effective_watermark):
                closed = self._join_store.close(index, at_time=emit_time)
                outputs.extend(
                    join_window_outputs(
                        closed, self.query.selectivity, emit_time
                    )
                )
                self.windows_emitted += 1
            self._update_state_usage(self._join_store.stored_weight())
        else:
            if job.partials:
                self._merger.absorb(job.partials, traces=job.traces)
            for contents in self._merger.pop_ready(
                effective_watermark, at_time=emit_time
            ):
                outputs.extend(aggregation_outputs(contents, emit_time))
                self.windows_emitted += 1
        if outputs:
            weight = sum(o.weight for o in outputs)
            self._account_emission(weight)
            self.sink.emit(outputs, self._result_bytes_per_output_weight)

    def conservation(self) -> Dict[str, float]:
        ledger = super().conservation()
        if self._is_join:
            # Join records enter the window store on ingest; the batch
            # counter is bookkeeping, not a separate stage.
            ledger.update(windowed_conservation(self._join_store))
            return ledger
        # Aggregation records are staged twice before reaching window
        # state: the current (un-fired) batch's partials, then the fired
        # batch riding its queued/running job until the merger absorbs it.
        staged = self._partials.batch_weight
        staged += sum(job.volume for job in self._job_queue)
        if self._running_job is not None:
            staged += self._running_job.volume
        ledger.update(
            staged=staged,
            admitted=self._merger.absorbed_weight,
            dropped=self._merger.dropped_weight,
            closed=self._merger.closed_weight,
            stored=(
                self._merger.stored_weight()
                / self.query.window.windows_per_event
            ),
            # Lineage recompute re-derives lost partitions exactly; no
            # weight is ever destroyed.
            lost=0.0,
        )
        return ledger

    def diagnostics(self) -> Dict[str, float]:
        diag = super().diagnostics()
        diag["windows_emitted"] = float(self.windows_emitted)
        if self._is_join:
            diag["late_dropped_weight"] = (
                self._join_store.purchases.dropped_weight
                + self._join_store.ads.dropped_weight
            )
        else:
            diag["late_dropped_weight"] = self._merger.dropped_weight
        diag["jobs_run"] = float(len(self.job_log))
        diag["queued_jobs"] = float(len(self._job_queue))
        diag["rate_limit"] = (
            self._controller.rate_limit
            if self._controller.rate_limit != float("inf")
            else -1.0
        )
        return diag
