"""The Apache Flink 1.1.3 model.

Architectural traits reproduced (all from the paper's analysis):

- **Pipelined, tuple-at-a-time execution with operator chaining**: no
  blocking stages, so the unloaded pipeline delay is small and constant;
  "Flink ... performs operator chaining in query optimization part to
  avoid unnecessary data migration" (Experiment 2).
- **Credit-based flow control**: ingestion tracks the bottleneck
  smoothly, "in the order of tuples" (Experiment 5) -- Figure 9c's flat
  pull rate.
- **Incremental window aggregation**: "Flink computes aggregates
  on-the-fly and not after window closes" (Experiment 3), so aggregation
  results are emitted right at window close with no bulk pass, and
  per-window state is per-key accumulators only.  Flink "cannot share
  aggregate results among different sliding windows" -- each record pays
  one keyed update per containing window (part of the calibrated keyed
  cost).
- **Windowed join evaluated at window close**: the probe over the
  buffered window is a bulk operation whose duration grows with the
  window volume -- the reason join latencies (Table IV) are seconds
  while aggregation latencies (Table II) are fractions of a second.
- **Single-slot keyed stage**: "Flink and Storm use one slot per
  operator instance", so a single hot key caps throughput at one slot's
  rate and the deployment stops scaling (Experiment 4); under a skewed
  *join*, state on the hot slot blows up and the engine becomes
  unresponsive (modelled as a topology stall once the backlog passes a
  threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.autoscale.rescale import STYLE_SAVEPOINT, RescaleSemantics
from repro.core.records import Record
from repro.engines.backpressure import BackpressureMechanism, CreditBased
from repro.engines.base import (
    EngineConfig,
    StreamingEngine,
    windowed_conservation,
)
from repro.core.batch import RecordBlock
from repro.engines.operators.aggregate import aggregation_outputs
from repro.engines.operators.columnar import (
    ColumnarJoinStore,
    ColumnarWindowStore,
)
from repro.engines.operators.join import JoinWindowStore, join_window_outputs
from repro.engines.operators.window import KeyedWindowStore
from repro.faults.checkpoint import RecoverySemantics
from repro.faults.guarantees import DeliveryGuarantee
from repro.sim.failures import TopologyStalled
from repro.workloads.queries import WindowedJoinQuery


@dataclass(frozen=True)
class FlinkConfig(EngineConfig):
    """Flink defaults: short ticks and a small pipeline delay
    (tuple-at-a-time semantics); modest, infrequent JVM pauses (Flink's
    runtime manages most memory off-heap)."""

    tick_interval_s: float = 0.05
    buffer_seconds: float = 0.5
    pipeline_delay_s: float = 0.05
    gc_rate_per_s: float = 0.02
    gc_pause_mean_s: float = 0.25
    gc_pause_sigma: float = 0.6
    emit_jitter_sigma: float = 0.25


class FlinkEngine(StreamingEngine):
    """Pipelined engine with credit-based backpressure."""

    name = "flink"
    # Barrier checkpoints + source replay: restore the last snapshot over
    # the surviving NICs, replay since the barrier -- exactly once.
    recovery_semantics = RecoverySemantics.CHECKPOINT_RESTORE
    default_guarantee = DeliveryGuarantee.EXACTLY_ONCE
    # Rescale = aligned savepoint + restart at the new parallelism: the
    # cutover pays the savepoint sync pause over the whole keyed state
    # (plus NIC migration), but exactly-once survives intact.
    rescale = RescaleSemantics(
        style=STYLE_SAVEPOINT, provision_s=15.0, warmup_s=3.0
    )

    #: Driver-queue backlog (in seconds of single-slot capacity) beyond
    #: which a skewed join is declared unresponsive (Experiment 4).
    SKEW_JOIN_STALL_BACKLOG_S = 30.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._backpressure_mechanism = CreditBased()
        self._is_join = isinstance(self.query, WindowedJoinQuery)
        self._store: Union[JoinWindowStore, KeyedWindowStore]
        hint = self.query.keys.num_keys
        if self._is_join:
            self._store = (
                ColumnarJoinStore(self.query.window, hint)
                if self._vector
                else JoinWindowStore(self.query.window)
            )
        else:
            self._store = (
                ColumnarWindowStore(self.query.window, hint)
                if self._vector
                else KeyedWindowStore(self.query.window)
            )
        self.windows_emitted = 0

    @classmethod
    def default_config(cls) -> FlinkConfig:
        return FlinkConfig()

    @classmethod
    def supports_spill(cls) -> bool:
        # "Flink (as well as Spark) has built-in data structures that can
        # spill to disk when needed" (Experiment 3).
        return True

    @classmethod
    def recommended_degradation(cls):
        # Pipelined engine with fine-grained flow control: a short ramp
        # suffices (credit-based backpressure meters the catch-up burst
        # on its own) and shedding from the head keeps the exactly-once
        # output fresh.
        from repro.recovery.degradation import DegradationPolicy

        return DegradationPolicy(
            shed="oldest", max_queue_delay_s=5.0, readmission_ramp_s=2.0
        )

    def _backpressure(self) -> BackpressureMechanism:
        return self._backpressure_mechanism

    # -- pipeline ---------------------------------------------------------

    def _process(self, records: List[Record], dt: float) -> None:
        for record in records:
            self._store.add(record)
        self._update_state_usage(self._store.stored_weight())

    def _process_batch(self, blocks: List[RecordBlock], dt: float) -> None:
        for block in blocks:
            self._store.add_block(block)
        self._update_state_usage(self._store.stored_weight())

    def _on_tick_end(self, dt: float) -> None:
        assert self.source is not None
        self._check_skew_join_health()
        watermark = self.source.watermark - self.config.allowed_lateness_s
        for index in self._store.ready_indices(watermark):
            self._close_window(index)

    def _close_window(self, index: int) -> None:
        assert self.sink is not None
        if self._is_join:
            closed = self._store.close(index, at_time=self.sim.now)
            delay = (
                self.config.pipeline_delay_s
                + self.cost.bulk_emit_delay_s(closed.total_weight, self.cluster)
                * self._emit_jitter()
            )
            emit_time = self.sim.now + delay
            outputs = join_window_outputs(
                closed, self.query.selectivity, emit_time
            )
        else:
            contents = self._store.close(index, at_time=self.sim.now)
            delay = self.config.pipeline_delay_s * self._emit_jitter()
            emit_time = self.sim.now + delay
            outputs = aggregation_outputs(contents, emit_time)
        self.windows_emitted += 1
        self._update_state_usage(self._store.stored_weight())
        if outputs:
            self.sim.schedule(delay, self._emit, outputs)

    def _emit(self, outputs) -> None:
        assert self.sink is not None
        weight = sum(o.weight for o in outputs)
        self._account_emission(weight)
        self.sink.emit(outputs, self._result_bytes_per_output_weight)

    def _check_skew_join_health(self) -> None:
        """Experiment 4: a skewed join makes Flink unresponsive."""
        if not self._is_join or self._hot_fraction < 0.5:
            return
        assert self.source is not None
        slot_rate = self.cost.keyed_slot_capacity_events_per_s()
        threshold = slot_rate * self.SKEW_JOIN_STALL_BACKLOG_S
        if self.source.backlog_weight > threshold:
            raise TopologyStalled(
                "Flink unresponsive: skewed join backlog "
                f"{self.source.backlog_weight:.0f} events exceeds "
                f"{threshold:.0f}",
                at_time=self.sim.now,
            )

    def conservation(self) -> Dict[str, float]:
        ledger = super().conservation()
        ledger.update(windowed_conservation(self._store))
        return ledger

    def diagnostics(self) -> Dict[str, float]:
        diag = super().diagnostics()
        diag["windows_emitted"] = float(self.windows_emitted)
        if isinstance(self._store, KeyedWindowStore):
            diag["keyed_updates"] = float(self._store.updates)
            diag["late_dropped_weight"] = self._store.dropped_weight
        else:
            diag["late_dropped_weight"] = (
                self._store.purchases.dropped_weight
                + self._store.ads.dropped_weight
            )
        return diag
