"""Backpressure mechanisms of the three engines.

The paper attributes much of the latency/throughput behaviour it
measures to the engines' very different flow-control designs:

- Flink uses fine-grained, credit-like flow control: ingestion smoothly
  tracks downstream capacity "in the order of tuples" (Experiment 5),
  giving the near-constant pull rate of Figure 9c.
- Spark's rate controller reacts at *job/stage* granularity: "once the
  stage is overloaded, passing this information to upstream stages works
  in the order of job stage execution time", producing the fluctuating
  pull rate of Figure 9b and the scheduler-delay coupling of Figure 11.
- Storm "lacks an efficient backpressure mechanism to find a
  near-constant data ingestion rate" (Figure 9a): an on/off throttle
  oscillates between full-rate pulls and pauses, and under high load the
  mechanism can stall the whole topology.

Each mechanism answers one question per engine tick: *how many events may
be ingested now*, given a capacity estimate and the engine's internal
buffer occupancy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

import numpy as np


class BackpressureMechanism(ABC):
    """Flow control: converts capacity + buffer state into an ingest grant."""

    @abstractmethod
    def ingest_budget(
        self,
        dt: float,
        capacity_events_per_s: float,
        buffered_events: float,
        buffer_capacity_events: float,
    ) -> float:
        """Events the engine may ingest during this ``dt``-second tick."""

    def on_tick_end(self, now: float) -> None:
        """Clock sync: engines call this at the end of EVERY tick --
        including ticks where ``ingest_budget`` is skipped (JVM pauses,
        recovery outages) -- with the engine's simulated time.

        Mechanisms with internal clocks (:class:`OnOffThrottle`) must
        advance them here; before this hook was wired up, a throttle's
        clock only moved inside ``ingest_budget``, so every skipped tick
        froze it and stall windows silently stretched in simulated time
        (and the stall time reported to the metrics registry drifted
        from the throughput dip the driver observes).  Default: no-op.
        """

    def metrics(self) -> Dict[str, float]:
        """Flow-control counters published to the metrics registry
        (stall/off/limited time in *simulated seconds*); default none."""
        return {}


class CreditBased(BackpressureMechanism):
    """Flink-style credit flow control.

    Ingest is granted up to remaining buffer credit and processing
    capacity, every tick, with no hysteresis: the pull rate tracks the
    bottleneck smoothly.
    """

    def __init__(self) -> None:
        self.credit_limited_s = 0.0
        """Simulated time during which the buffer credit (not raw
        processing capacity) was the binding constraint on ingest."""

    def ingest_budget(
        self,
        dt: float,
        capacity_events_per_s: float,
        buffered_events: float,
        buffer_capacity_events: float,
    ) -> float:
        credit = max(0.0, buffer_capacity_events - buffered_events)
        if credit < capacity_events_per_s * dt:
            self.credit_limited_s += dt
        return min(capacity_events_per_s * dt, credit)

    def metrics(self) -> Dict[str, float]:
        return {"credit_limited_s": self.credit_limited_s}


class OnOffThrottle(BackpressureMechanism):
    """Storm-style watermark throttle (disruptor-queue high/low marks).

    While *on*, the spout pulls at ``burst_factor`` times the processing
    capacity; when the internal buffer passes the high watermark the
    spout stops emitting entirely until the buffer drains below the low
    watermark.  The result is the oscillating ingest of Figure 9a.

    With ``stall_rng`` set, sustained operation close to the high
    watermark occasionally triggers a topology stall (the paper: "With
    high workloads, it is possible that the backpressure stalls the
    topology, causing spouts to stop emitting tuples"), modelled as a
    multi-second zero-ingest period.
    """

    def __init__(
        self,
        high_watermark: float = 0.9,
        low_watermark: float = 0.4,
        burst_factor: float = 1.3,
        stall_rng: Optional[np.random.Generator] = None,
        stall_rate_per_s: float = 0.0,
        stall_duration_s: float = 4.0,
        stall_fill_threshold: float = 0.6,
        stall_cooldown_s: float = 120.0,
    ) -> None:
        if not 0 < low_watermark < high_watermark <= 1.0:
            raise ValueError(
                f"need 0 < low < high <= 1, got ({low_watermark}, {high_watermark})"
            )
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.burst_factor = burst_factor
        self._emitting = True
        self._stall_rng = stall_rng
        self.stall_rate_per_s = stall_rate_per_s
        self.stall_duration_s = stall_duration_s
        self.stall_fill_threshold = stall_fill_threshold
        self.stall_cooldown_s = stall_cooldown_s
        self._hazard_suppressed_until = -1.0
        self._stalled_until = -1.0
        self._now = 0.0
        self.stall_count = 0
        self.stalled_s = 0.0
        """Simulated seconds spent inside stall windows."""
        self.off_s = 0.0
        """Simulated seconds the throttle spent *off* (above the high
        watermark, not counting stall time)."""

    @property
    def emitting(self) -> bool:
        return self._emitting

    @property
    def stalled(self) -> bool:
        return self._now < self._stalled_until

    def _advance_clock(self, target: float) -> None:
        """Advance the throttle clock to ``target``, attributing the
        elapsed interval to the stall/off counters.

        The clock previously advanced only inside ``ingest_budget``
        (``_now += dt``), so ticks where the engine skipped flow control
        -- JVM pauses, post-fault recovery outages -- froze it.  A stall
        window scheduled as ``[_now, _now + duration)`` then outlasted
        ``duration`` in *simulated* time by however long the engine was
        paused, and the stall time the throttle reported disagreed with
        the zero-ingest dip the driver's throughput monitor observed.
        Engines now sync the clock via :meth:`on_tick_end` every tick.
        """
        if target <= self._now:
            return
        stall_overlap = max(0.0, min(target, self._stalled_until) - self._now)
        self.stalled_s += stall_overlap
        if not self._emitting:
            self.off_s += (target - self._now) - stall_overlap
        self._now = target

    def on_tick_end(self, now: float) -> None:
        self._advance_clock(now)

    def metrics(self) -> Dict[str, float]:
        return {
            "stalled_s": self.stalled_s,
            "off_s": self.off_s,
            "stall_count": float(self.stall_count),
        }

    def ingest_budget(
        self,
        dt: float,
        capacity_events_per_s: float,
        buffered_events: float,
        buffer_capacity_events: float,
    ) -> float:
        self._advance_clock(self._now + dt)
        if self.stalled:
            return 0.0
        fill = buffered_events / max(buffer_capacity_events, 1e-9)
        if self._emitting and fill >= self.high_watermark:
            self._emitting = False
        elif not self._emitting and fill <= self.low_watermark:
            self._emitting = True
        if fill > self.stall_fill_threshold:
            # Loaded internal queues are the risky regime: the stall
            # hazard applies for as long as the disruptor queues stay
            # loaded, which is why Storm's latency tails grow with load
            # and cluster size (Table II).
            self._maybe_stall(dt)
        if not self._emitting or self.stalled:
            return 0.0
        grant = self.burst_factor * capacity_events_per_s * dt
        headroom = max(0.0, buffer_capacity_events - buffered_events)
        return min(grant, headroom)

    def _maybe_stall(self, dt: float) -> None:
        if self._stall_rng is None or self.stall_rate_per_s <= 0:
            return
        if self._now < self._hazard_suppressed_until:
            # Post-stall drain keeps the queues loaded; without a
            # hazard cooldown every stall would chain into the next.
            return
        p = min(1.0, self.stall_rate_per_s * max(dt, 1e-3))
        if self._stall_rng.random() < p:
            self.force_stall()

    def force_stall(self, duration_s: Optional[float] = None) -> None:
        """Stall the topology now (surge-induced stalls, Experiment 5)."""
        self._stalled_until = self._now + (
            self.stall_duration_s if duration_s is None else duration_s
        )
        self._hazard_suppressed_until = self._stalled_until + self.stall_cooldown_s
        self.stall_count += 1


class RateController(BackpressureMechanism):
    """Spark-style PID rate controller, updated at batch boundaries.

    The controller keeps an events/second limit.  After each batch it
    compares the batch's processing time to the batch interval: if the
    job overran, the limit shrinks; if it finished early and no jobs are
    queued, the limit grows toward the offered load.  Within a batch the
    limit is enforced per tick -- the coarse (batch-level) reaction time
    is exactly the sluggishness the paper describes for Spark.
    """

    def __init__(
        self,
        batch_interval_s: float,
        initial_rate: float = float("inf"),
        decrease_factor: float = 0.97,
        increase_factor: float = 1.10,
        min_rate: float = 1000.0,
        receiver_headroom: float = 1.05,
    ) -> None:
        if batch_interval_s <= 0:
            raise ValueError("batch_interval_s must be positive")
        self.batch_interval_s = batch_interval_s
        self.rate_limit = initial_rate
        self.decrease_factor = decrease_factor
        self.increase_factor = increase_factor
        self.min_rate = min_rate
        self.receiver_headroom = receiver_headroom
        """Receivers can briefly ingest slightly above the steady-state
        processing capacity (into blocks); the controller then corrects.
        This bounds the initial over-ingestion of Figure 11."""
        self.adjustments = 0
        self.rate_limited_s = 0.0
        """Simulated time during which the controller's rate limit (not
        capacity or buffer headroom) was the binding constraint."""

    def ingest_budget(
        self,
        dt: float,
        capacity_events_per_s: float,
        buffered_events: float,
        buffer_capacity_events: float,
    ) -> float:
        headroom = max(0.0, buffer_capacity_events - buffered_events)
        ceiling = capacity_events_per_s * self.receiver_headroom
        limit_grant = self.rate_limit * dt
        if limit_grant < min(ceiling * dt, headroom):
            self.rate_limited_s += dt
        return min(limit_grant, ceiling * dt, headroom)

    def metrics(self) -> Dict[str, float]:
        # rate_limit is +inf until the first downward adjustment; report
        # -1 for "uncapped" so exported series stay finite.
        rate = self.rate_limit if self.rate_limit != float("inf") else -1.0
        return {
            "rate_limited_s": self.rate_limited_s,
            "rate_limit": rate,
            "adjustments": float(self.adjustments),
        }

    def on_batch_complete(
        self,
        processing_time_s: float,
        batch_events: float,
        queued_jobs: int,
    ) -> None:
        """Feedback from the DAG scheduler after a batch job finishes."""
        self.adjustments += 1
        achieved_rate = batch_events / self.batch_interval_s
        if processing_time_s > self.batch_interval_s or queued_jobs > 1:
            target = achieved_rate * (
                self.batch_interval_s / max(processing_time_s, 1e-9)
            )
            self.rate_limit = max(
                self.min_rate, min(self.rate_limit, target) * self.decrease_factor
            )
        else:
            if self.rate_limit == float("inf"):
                return
            self.rate_limit = max(
                self.min_rate, self.rate_limit * self.increase_factor
            )
