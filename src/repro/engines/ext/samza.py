"""Apache Samza: an EXTENSION engine model (not in the paper's tables).

Samza processes partitioned streams one message at a time, with state
in per-task RocksDB stores (changelogged to the log for recovery) and
flow control inherited from log consumption: a task only polls as fast
as it processes, so backpressure is implicit and smooth.

Model traits:

- pipelined per-partition processing (credit-like flow control);
- a per-batch *commit interval*: output visibility waits for the next
  commit (default 500 ms), giving Samza a small fixed latency floor
  between Flink's milliseconds and Spark's seconds;
- RocksDB state: effectively spill-native (large windows are fine, at a
  modest slowdown), and changelog-backed recovery after node failures
  (no data loss, moderate restore pause);
- per-partition parallelism: a single hot key serialises on one task,
  like Flink/Storm.

Calibration status: SPECULATIVE.  Constants are assumptions documented
inline; nothing here reproduces a published number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.autoscale.rescale import STYLE_REPARTITION, RescaleSemantics
from repro.core.records import Record
from repro.engines.backpressure import BackpressureMechanism, CreditBased
from repro.engines.base import (
    EngineConfig,
    StreamingEngine,
    windowed_conservation,
)
from repro.engines.calibration import CostModel
from repro.core.batch import RecordBlock
from repro.engines.operators.aggregate import aggregation_outputs
from repro.engines.operators.columnar import (
    ColumnarJoinStore,
    ColumnarWindowStore,
)
from repro.engines.operators.join import JoinWindowStore, join_window_outputs
from repro.engines.operators.window import KeyedWindowStore
from repro.faults.checkpoint import RecoverySemantics
from repro.faults.guarantees import DeliveryGuarantee
from repro.workloads.queries import WindowedJoinQuery


@dataclass(frozen=True)
class SamzaConfig(EngineConfig):
    """Samza defaults (extension; assumptions, not calibration)."""

    tick_interval_s: float = 0.05
    buffer_seconds: float = 1.0
    pipeline_delay_s: float = 0.05
    gc_rate_per_s: float = 0.02
    gc_pause_mean_s: float = 0.3
    gc_pause_sigma: float = 0.5
    emit_jitter_sigma: float = 0.15
    commit_interval_s: float = 0.5
    """Window results become visible at the next task commit."""


class SamzaEngine(StreamingEngine):
    """Per-partition log-consumer engine (extension)."""

    name = "samza"
    # Changelog-backed store restore (a checkpoint in log form); commits
    # are offset-based without output dedup, so replays duplicate.
    recovery_semantics = RecoverySemantics.CHECKPOINT_RESTORE
    default_guarantee = DeliveryGuarantee.AT_LEAST_ONCE
    # Rescale repartitions the task-to-container assignment: moved
    # tasks restore from the changelog on their new owner and re-consume
    # since the last commit -- that share of the commit window is
    # re-delivered (at-least-once duplicates).
    rescale = RescaleSemantics(
        style=STYLE_REPARTITION, provision_s=15.0, warmup_s=2.0
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not isinstance(self.config, SamzaConfig):
            self.config = SamzaConfig(**vars(self.config))  # type: ignore[arg-type]
        self._credit = CreditBased()
        self._is_join = isinstance(self.query, WindowedJoinQuery)
        self._store: Union[JoinWindowStore, KeyedWindowStore]
        hint = self.query.keys.num_keys
        if self._is_join:
            self._store = (
                ColumnarJoinStore(self.query.window, hint)
                if self._vector
                else JoinWindowStore(self.query.window)
            )
        else:
            self._store = (
                ColumnarWindowStore(self.query.window, hint)
                if self._vector
                else KeyedWindowStore(self.query.window)
            )
        self.windows_emitted = 0

    @classmethod
    def default_config(cls) -> "SamzaConfig":
        return SamzaConfig()

    @classmethod
    def supports_spill(cls) -> bool:
        # RocksDB state is disk-backed by design.
        return True

    @classmethod
    def recommended_degradation(cls):
        # At-least-once via the changelog: history already queued will
        # be re-read on recovery anyway, so shed from the tail (newest)
        # to avoid double work, with a patient ramp while RocksDB
        # compaction settles.
        from repro.recovery.degradation import DegradationPolicy

        return DegradationPolicy(
            shed="newest", max_queue_delay_s=8.0, readmission_ramp_s=3.0
        )

    def _resolve_cost_model(self) -> CostModel:
        # Assumptions: heavier per-event cost than Flink (serde through
        # the log), lighter than Storm; RocksDB makes the keyed stage
        # costlier but large state cheap.
        if self.query.kind == "aggregation":
            return CostModel(
                engine="samza",
                query_kind="aggregation",
                pipeline_cost_us=38.0,
                keyed_cost_us=4.0,
                bulk_emit_cost_us=0.0,
                scaling_efficiency={2: 1.0, 4: 0.9, 8: 0.78},
                state_bytes_per_event=24.0,
            )
        return CostModel(
            engine="samza",
            query_kind="join",
            pipeline_cost_us=46.0,
            keyed_cost_us=10.0,
            bulk_emit_cost_us=14.0,
            scaling_efficiency={2: 1.0, 4: 0.85, 8: 0.7},
            state_bytes_per_event=120.0,
        )

    def _backpressure(self) -> BackpressureMechanism:
        return self._credit

    def _process(self, records: List[Record], dt: float) -> None:
        for record in records:
            self._store.add(record)
        self._update_state_usage(self._store.stored_weight())

    def _process_batch(self, blocks: List[RecordBlock], dt: float) -> None:
        for block in blocks:
            self._store.add_block(block)
        self._update_state_usage(self._store.stored_weight())

    def _on_tick_end(self, dt: float) -> None:
        assert self.source is not None
        watermark = self.source.watermark - self.config.allowed_lateness_s
        for index in self._store.ready_indices(watermark):
            self._close_window(index)

    def _next_commit_delay(self) -> float:
        """Time until the next task commit makes output visible."""
        cfg: SamzaConfig = self.config
        interval = cfg.commit_interval_s
        if interval <= 0:
            return 0.0
        phase = self.sim.now % interval
        return interval - phase

    def _close_window(self, index: int) -> None:
        assert self.sink is not None
        delay = self.config.pipeline_delay_s + self._next_commit_delay()
        if self._is_join:
            closed = self._store.close(index, at_time=self.sim.now)
            delay += self.cost.bulk_emit_delay_s(
                closed.total_weight, self.cluster
            ) * self._emit_jitter()
            emit_time = self.sim.now + delay
            outputs = join_window_outputs(
                closed, self.query.selectivity, emit_time
            )
        else:
            contents = self._store.close(index, at_time=self.sim.now)
            emit_time = self.sim.now + delay
            outputs = aggregation_outputs(contents, emit_time)
        self.windows_emitted += 1
        self._update_state_usage(self._store.stored_weight())
        if outputs:
            self.sim.schedule(delay, self._emit, outputs)

    def _emit(self, outputs) -> None:
        assert self.sink is not None
        weight = sum(o.weight for o in outputs)
        self._account_emission(weight)
        self.sink.emit(outputs, self._result_bytes_per_output_weight)

    def _rescale_exposed_weight(self, moved_fraction: float) -> float:
        # Moved tasks re-consume from their input topics since the last
        # committed offset: the moved share of the commit window is
        # re-delivered, which at-least-once accounting books as
        # duplicates (state itself restores intact from the changelog).
        return moved_fraction * max(
            0.0, self.ingested_weight - self._ckpt_ingested_weight
        )

    def conservation(self) -> Dict[str, float]:
        ledger = super().conservation()
        ledger.update(windowed_conservation(self._store))
        return ledger

    def diagnostics(self) -> Dict[str, float]:
        diag = super().diagnostics()
        diag["windows_emitted"] = float(self.windows_emitted)
        return diag
