"""Extension engines (NOT evaluated in the ICDE'18 paper).

The paper's future work names further systems to plug into the generic
interface: "such as Apache Samza, Heron, and Apache Apex".  This
subpackage provides two of them as *speculative* models:

- :mod:`repro.engines.ext.heron` -- Twitter Heron: Storm-API-compatible
  with a redesigned, mature backpressure and lower per-tuple overhead.
- :mod:`repro.engines.ext.samza` -- Apache Samza: per-partition
  processing over a replicated log with RocksDB state.

Unlike the Storm/Spark/Flink models, their cost constants are NOT fitted
to published measurements from the paper -- they are plausible
extrapolations documented inline, provided to demonstrate (and test)
the pluggable-SUT interface at scale.  Importing this package registers
both engines and their cost models.
"""

from repro.engines import ENGINES
from repro.engines.ext.heron import HeronEngine
from repro.engines.ext.samza import SamzaEngine


def register_extension_engines() -> None:
    """Add Heron and Samza to the engine registry (idempotent)."""
    ENGINES.setdefault("heron", HeronEngine)
    ENGINES.setdefault("samza", SamzaEngine)


register_extension_engines()

__all__ = ["HeronEngine", "SamzaEngine", "register_extension_engines"]
