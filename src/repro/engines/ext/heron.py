"""Twitter Heron: an EXTENSION engine model (not in the paper's tables).

Heron re-implemented Storm's API with per-topology containers, a
redesigned scheduler, and -- most relevantly for this framework -- a
*working* backpressure mechanism (spout-level rate control instead of
the disruptor-queue on/off throttle).  The model therefore reuses
Storm's operator semantics (tuple-at-a-time, bulk window evaluation, no
built-in windowed join) while replacing the pathological pieces:

- credit-like spout rate control: smooth ingest, no topology stalls;
- ~35% lower per-tuple overhead than Storm 1.0.2 (Heron's published
  motivation was Storm's per-tuple cost; the exact figure here is an
  assumption, documented as such);
- the same in-memory window state as Storm (no spill-to-disk).

Calibration status: SPECULATIVE.  Constants extrapolate from the
calibrated Storm model; nothing here reproduces a published number.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.autoscale.rescale import STYLE_REBALANCE, RescaleSemantics
from repro.engines.backpressure import BackpressureMechanism, CreditBased
from repro.engines.calibration import (
    AGGREGATION,
    JOIN,
    CostModel,
    cost_model_for,
)
from repro.engines.storm import StormConfig, StormEngine

#: Assumed per-tuple overhead reduction relative to Storm 1.0.2.
HERON_COST_FACTOR = 0.65


@dataclass(frozen=True)
class HeronConfig(StormConfig):
    """Heron defaults: Storm semantics minus the backpressure pathology."""

    stall_rate_per_s: float = 0.0       # no topology stalls
    surge_stall_prob: float = 0.0       # surges are rate-limited, not fatal
    coordination_delay_base_s: float = 0.35
    emit_jitter_sigma: float = 0.25
    emit_jitter_per_worker: float = 0.03


class HeronEngine(StormEngine):
    """Storm-compatible engine with mature backpressure (extension)."""

    name = "heron"
    # Inherits Storm's tuple-replay semantics and at-most-once default:
    # the container scheduler restarts faster, but without acking the
    # dead container's window state is still gone.  Rescale is Storm's
    # in-flight rebalance too, just with a faster container scheduler
    # (shorter warm-up); the moved partitions' exposure is identical.
    rescale = RescaleSemantics(
        style=STYLE_REBALANCE, provision_s=10.0, warmup_s=1.5
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Replace Storm's on/off throttle with smooth rate control.
        self._credit = CreditBased()

    @classmethod
    def default_config(cls) -> "HeronConfig":
        return HeronConfig()

    @classmethod
    def recommended_degradation(cls):
        # Same at-most-once contract as Storm, but the smooth credit
        # backpressure holds a slightly deeper queue without collapse,
        # so the delay bound and ramp sit between Storm's and Flink's.
        from repro.recovery.degradation import DegradationPolicy

        return DegradationPolicy(
            shed="oldest", max_queue_delay_s=4.0, readmission_ramp_s=1.5
        )

    def _resolve_cost_model(self) -> CostModel:
        storm = cost_model_for("storm", self.query.kind)
        return replace(
            storm,
            engine="heron",
            pipeline_cost_us=storm.pipeline_cost_us * HERON_COST_FACTOR,
            keyed_cost_us=storm.keyed_cost_us * HERON_COST_FACTOR,
            bulk_emit_cost_us=storm.bulk_emit_cost_us * HERON_COST_FACTOR,
            # Container isolation removes some of Storm's cross-worker
            # coordination loss (assumption).
            scaling_efficiency={
                workers: min(1.0, eff * 1.1)
                for workers, eff in storm.scaling_efficiency.items()
            },
        )

    def _backpressure(self) -> BackpressureMechanism:
        return self._credit

    def _check_naive_join_health(self) -> None:
        # Heron inherits Storm's lack of a built-in windowed join, but
        # its container scheduler keeps the naive join from stalling the
        # whole topology; it is merely slow.
        return None
