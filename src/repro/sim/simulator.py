"""The discrete-event simulator at the bottom of the stack.

Every moving part of the reproduction -- data generators, driver queues,
engine ticks, window triggers, GC pauses, mini-batch job completions --
is an event scheduled on a single :class:`Simulator` instance.  The
simulator is strictly deterministic: events fire in (time, sequence)
order, and all randomness is drawn from seeded streams
(:mod:`repro.sim.rng`), so a benchmark run is reproducible bit-for-bit.

The simulated clock is a float in **seconds**.  Components that need a
regular heartbeat (e.g. a generator producing a cohort of events every
tick) register a :class:`PeriodicProcess` via :meth:`Simulator.every`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (e.g. scheduling in the past)."""


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle for a scheduled event; pass to :meth:`Simulator.cancel`.

    The handle is safe to cancel multiple times, and safe to cancel after
    the event has fired (both are no-ops).
    """

    time: float
    seq: int


@dataclass
class _Event:
    time: float
    seq: int
    callback: Callable[..., None]
    args: Tuple[Any, ...]
    cancelled: bool = False

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._live: dict[int, _Event] = {}
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still scheduled (excluding cancelled ones)."""
        return len(self._live)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        seq = next(self._seq)
        event = _Event(time=time, seq=seq, callback=callback, args=args)
        heapq.heappush(self._heap, event)
        self._live[seq] = event
        return EventHandle(time=time, seq=seq)

    def cancel(self, handle: Optional[EventHandle]) -> bool:
        """Cancel a scheduled event.  Returns True if it was still pending."""
        if handle is None:
            return False
        event = self._live.pop(handle.seq, None)
        if event is None:
            return False
        event.cancelled = True
        return True

    def every(
        self,
        interval: float,
        callback: Callable[["Simulator"], None],
        start: Optional[float] = None,
    ) -> "PeriodicProcess":
        """Register a periodic process firing every ``interval`` seconds.

        ``callback`` receives the simulator so it can read the clock and
        schedule follow-up events.  The first firing happens at ``start``
        (defaults to ``now + interval``).
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        process = PeriodicProcess(self, interval, callback)
        process.start_at(self._now + interval if start is None else start)
        return process

    def _pop_next(self) -> Optional[_Event]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live.pop(event.seq, None)
                return event
        return None

    def step(self) -> bool:
        """Execute the next event.  Returns False when the heap is empty."""
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        event.callback(*event.args)
        return True

    def run(self) -> None:
        """Run until no events remain."""
        self._running = True
        try:
            while self._running and self.step():
                pass
        finally:
            self._running = False

    def run_until(self, time: float) -> None:
        """Run all events with timestamp <= ``time``; advance clock to it."""
        if time < self._now:
            raise SimulationError(
                f"run_until({time:.6f}) is before now={self._now:.6f}"
            )
        self._running = True
        try:
            while self._running and self._heap:
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if nxt.time > time:
                    break
                self.step()
        finally:
            self._running = False
        self._now = max(self._now, time)

    def stop(self) -> None:
        """Stop a :meth:`run`/:meth:`run_until` loop after the current event."""
        self._running = False


class PeriodicProcess:
    """A self-rescheduling periodic callback.

    Created through :meth:`Simulator.every`.  ``stop()`` halts it; the
    interval can be changed on the fly (used by rate-profile changes).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[Simulator], None],
    ) -> None:
        self._sim = sim
        self.interval = float(interval)
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self._stopped = False
        self.fire_count = 0

    def start_at(self, time: float) -> None:
        if self._handle is not None:
            raise SimulationError("periodic process already started")
        self._handle = self._sim.schedule_at(time, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._handle = None
        self.fire_count += 1
        self._callback(self._sim)
        if not self._stopped:
            self._handle = self._sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        """Permanently halt the process."""
        self._stopped = True
        self._sim.cancel(self._handle)
        self._handle = None

    @property
    def stopped(self) -> bool:
        return self._stopped
