"""Node and cluster specifications.

The paper's testbed (Section VI-A): 20 nodes, each a 2.40 GHz Intel Xeon
E5620 with 16 cores and 16 GB RAM, connected at 1 Gb/s; a dedicated
master for the streaming system and an *equal* number of worker and
driver nodes (2, 4, and 8).  Data generator and queue pairs live on the
driver nodes; no driver instance shares a machine with the SUT.

:func:`paper_cluster` builds exactly that deployment for a given worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of a single machine."""

    cores: int = 16
    ram_gb: float = 16.0
    nic_gbps: float = 1.0
    clock_ghz: float = 2.40

    @property
    def nic_bytes_per_s(self) -> float:
        """NIC capacity in bytes/second (1 Gb/s -> 125 MB/s)."""
        return self.nic_gbps * 1e9 / 8.0

    @property
    def ram_bytes(self) -> float:
        return self.ram_gb * 1024**3


@dataclass(frozen=True)
class ClusterSpec:
    """A deployment: master + workers (SUT) + drivers (generator/queues).

    ``workers`` is the paper's "n-node" figure of merit: a "2-node"
    experiment means 2 worker nodes running the SUT plus 2 driver nodes
    running generator+queue pairs plus a dedicated master.
    """

    workers: int
    drivers: int
    node: NodeSpec = field(default_factory=NodeSpec)
    has_dedicated_master: bool = True
    standby: int = 0
    """Hot spare worker nodes provisioned but idle: they run no
    operators (and contribute no capacity, cores, or NIC ingress) until
    a :class:`~repro.recovery.reschedule.ReschedulePolicy` promotes
    them after a fault."""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need at least 1 worker, got {self.workers}")
        if self.drivers < 1:
            raise ValueError(f"need at least 1 driver, got {self.drivers}")
        if self.standby < 0:
            raise ValueError(f"standby must be >= 0, got {self.standby}")

    @property
    def total_nodes(self) -> int:
        return (
            self.workers
            + self.drivers
            + self.standby
            + (1 if self.has_dedicated_master else 0)
        )

    @property
    def worker_cores(self) -> int:
        """Total cores available to the SUT."""
        return self.workers * self.node.cores

    @property
    def worker_ram_bytes(self) -> float:
        """Total RAM available to the SUT across worker nodes."""
        return self.workers * self.node.ram_bytes

    @property
    def sut_ingress_bytes_per_s(self) -> float:
        """Aggregate NIC ingress capacity across the worker nodes."""
        return self.workers * self.node.nic_bytes_per_s

    def with_workers(self, workers: int) -> "ClusterSpec":
        """This deployment resized to ``workers`` worker nodes.

        Used by the autoscaler on every completed rescale: the rest of
        the deployment (drivers, master, node hardware) is fixed for the
        trial -- elasticity only moves the worker count.
        """
        return replace(self, workers=workers)

    def describe(self) -> str:
        return (
            f"{self.workers}-node cluster "
            f"({self.workers} workers + {self.drivers} drivers"
            f"{f' + {self.standby} standby' if self.standby else ''}"
            f"{' + master' if self.has_dedicated_master else ''}, "
            f"{self.node.cores} cores / {self.node.ram_gb:g} GB / "
            f"{self.node.nic_gbps:g} Gb/s per node)"
        )


def paper_cluster(workers: int) -> ClusterSpec:
    """The ICDE'18 paper's deployment for a given worker count (2, 4, 8).

    Any positive worker count is accepted so sweeps can explore other
    sizes, but the paper's tables use 2, 4 and 8.
    """
    return ClusterSpec(workers=workers, drivers=workers, node=NodeSpec())


PAPER_CLUSTER_SIZES: List[int] = [2, 4, 8]
"""Worker counts used in every table of the paper's evaluation."""
