"""Discrete-event simulation substrate.

This subpackage provides the deterministic simulation machinery on which the
benchmark framework and the engine models run:

- :mod:`repro.sim.simulator` -- the event-heap simulator (clock, scheduling,
  periodic processes).
- :mod:`repro.sim.rng` -- named, seeded random-number streams so that every
  component draws from an independent, reproducible source.
- :mod:`repro.sim.cluster` -- node and cluster specifications mirroring the
  paper's testbed (16-core / 16 GB / 1 Gb/s nodes, dedicated master, equal
  numbers of worker and driver nodes).
- :mod:`repro.sim.network` -- the data-plane model (per-node NICs plus a
  shared generator-to-SUT segment) whose saturation produces the paper's
  observed ~1.2 M events/s network bound.
- :mod:`repro.sim.resources` -- CPU-load and network-usage sampling used to
  regenerate the paper's Figure 10.
- :mod:`repro.sim.failures` -- the failure vocabulary (connection drops,
  out-of-memory, topology stalls) used by the failure rules of Section VI-A.
"""

from repro.sim.cluster import ClusterSpec, NodeSpec, paper_cluster
from repro.sim.failures import (
    ConnectionDropped,
    OutOfMemory,
    SutFailure,
    TopologyStalled,
)
from repro.sim.network import DataPlane, NetworkSpec
from repro.sim.resources import ResourceMonitor, ResourceSample
from repro.sim.rng import RngRegistry
from repro.sim.simulator import EventHandle, PeriodicProcess, Simulator

__all__ = [
    "ClusterSpec",
    "ConnectionDropped",
    "DataPlane",
    "EventHandle",
    "NetworkSpec",
    "NodeSpec",
    "OutOfMemory",
    "PeriodicProcess",
    "ResourceMonitor",
    "ResourceSample",
    "RngRegistry",
    "Simulator",
    "SutFailure",
    "TopologyStalled",
    "paper_cluster",
]
