"""Failure vocabulary for the benchmark's failure rules.

Section VI-A of the paper defines hard failure conditions:

- "If the SUT drops one or more connections to the data generator queue,
  then the driver halts the experiment with the conclusion that the SUT
  cannot sustain the given throughput" -> :class:`ConnectionDropped`.
- Storm's immature backpressure "stalls the topology, causing spouts to
  stop emitting tuples" -> :class:`TopologyStalled`.
- Experiment 3/4 memory exhaustion ("we encountered memory exceptions",
  "the memory is consumed quite fast") -> :class:`OutOfMemory`.

Engines raise these; the driver converts any of them into a failed trial,
which the sustainable-throughput search treats as "rate not sustainable".
"""

from __future__ import annotations


class SutFailure(RuntimeError):
    """Base class: the system under test failed during a trial."""

    def __init__(self, message: str, at_time: float = float("nan")) -> None:
        super().__init__(message)
        self.at_time = at_time


class ConnectionDropped(SutFailure):
    """The SUT dropped its connection to a driver queue (overload)."""


class TopologyStalled(SutFailure):
    """The topology stopped making progress (Storm backpressure stall)."""


class OutOfMemory(SutFailure):
    """Operator state exceeded the worker memory budget without spill."""


class MeasurementFault(SutFailure):
    """Base class: the *measurement plane* (not the SUT) invalidated the
    trial.  Subclassing :class:`SutFailure` is deliberate -- the driver
    already knows how to convert that into a failed trial with partial
    diagnostics, and a trial whose instrument failed must never be
    reported as a valid measurement."""


class TrialTimeout(MeasurementFault):
    """The trial exceeded its wall-clock deadline (watchdog abort)."""


class TrialStalled(MeasurementFault):
    """The driver observed no push/pull progress for too long
    (watchdog abort): the trial would never finish on its own."""
