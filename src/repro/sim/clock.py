"""Per-node clock model: constant offset, bounded drift, NTP syncs.

The paper's metrology silently assumes the driver nodes share one
perfect clock: events are timestamped at generation (Section III-C) and
latency is read at the sink, so any disagreement between the stamping
clock and the reading clock lands *directly* in the reported event-time
latency.  Real deployments discipline their clocks with NTP, which
bounds -- but does not eliminate -- the error: between sync epochs a
clock free-runs at its drift rate on top of the residual error of the
last synchronisation.

:class:`NodeClock` models exactly that error budget:

- a constant initial offset (drawn once, bounded by ``offset_s``);
- a constant drift rate (bounded by ``drift_ppm`` parts per million),
  so the raw clock error at true time ``t`` is ``offset + drift * t``;
- NTP sync epochs every ``ntp_interval_s`` starting at t=0: each epoch
  publishes an estimate of the clock's current error that is accurate
  to within ``ntp_residual_s``.  A *disciplined* read subtracts the
  latest published estimate, leaving ``residual + drift * (t - t_sync)``.

The per-clock disciplined error is therefore bounded a priori by
``ntp_residual_s + drift_ppm * 1e-6 * ntp_interval_s`` -- the bound the
measurement plane exports (see :mod:`repro.metrology.skew`).

Everything is deterministic from the seed material: offsets and drifts
are drawn at fleet construction, and per-epoch residuals are derived
statelessly from ``(residual_seed, epoch)`` so that reads at arbitrary
times, in arbitrary order, always agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class ClockSkewSpec:
    """Bounds of the clock-error model shared by a fleet of clocks.

    All fields are *caps*: per-clock parameters are drawn uniformly
    inside them, so the exported error bound covers the worst draw.
    """

    offset_s: float = 0.005
    """Maximum absolute initial clock offset (uniform in +/- this)."""
    drift_ppm: float = 20.0
    """Maximum absolute drift rate in parts per million (uniform)."""
    ntp_interval_s: float = 30.0
    """Seconds between NTP sync epochs (first sync at t=0)."""
    ntp_residual_s: float = 0.0005
    """Maximum absolute error of each epoch's offset estimate."""
    corrected: bool = True
    """Discipline reads with the NTP estimates.  ``False`` models an
    unsynchronised cluster: clocks free-run from their raw offsets and
    the exported bound is knowingly violated (the regression test that
    proves the correction earns its keep)."""

    def __post_init__(self) -> None:
        if self.offset_s < 0:
            raise ValueError(f"offset_s must be >= 0, got {self.offset_s}")
        if self.drift_ppm < 0:
            raise ValueError(f"drift_ppm must be >= 0, got {self.drift_ppm}")
        if self.ntp_interval_s <= 0:
            raise ValueError(
                f"ntp_interval_s must be positive, got {self.ntp_interval_s}"
            )
        if self.ntp_residual_s < 0:
            raise ValueError(
                f"ntp_residual_s must be >= 0, got {self.ntp_residual_s}"
            )

    @property
    def drift_rate_cap(self) -> float:
        """Maximum absolute drift as a dimensionless rate (s per s)."""
        return self.drift_ppm * 1e-6

    @property
    def disciplined_error_bound_s(self) -> float:
        """A-priori bound on one disciplined clock's error at any time:
        the worst sync residual plus a full inter-sync interval of the
        worst drift."""
        return self.ntp_residual_s + self.drift_rate_cap * self.ntp_interval_s

    def build_fleet(
        self, rng: np.random.Generator, count: int
    ) -> List["NodeClock"]:
        """Draw ``count`` clocks with independent offsets/drifts.

        The per-epoch residual streams are seeded from ``rng`` too, so
        one seed reproduces the whole fleet bit-for-bit.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        clocks = []
        for _ in range(count):
            offset = float(rng.uniform(-self.offset_s, self.offset_s))
            drift = float(
                rng.uniform(-self.drift_rate_cap, self.drift_rate_cap)
            )
            residual_seed = int(rng.integers(0, 2**31 - 1))
            clocks.append(
                NodeClock(
                    spec=self,
                    offset_s=offset,
                    drift_rate=drift,
                    residual_seed=residual_seed,
                )
            )
        return clocks


class NodeClock:
    """One node's clock with a deterministic error trajectory."""

    def __init__(
        self,
        spec: ClockSkewSpec,
        offset_s: float,
        drift_rate: float,
        residual_seed: int,
    ) -> None:
        self.spec = spec
        self.offset_s = offset_s
        self.drift_rate = drift_rate
        self.residual_seed = residual_seed
        # Residuals are derived statelessly per epoch; memoised because
        # the latency hot path reads the same epoch thousands of times.
        self._residual_cache: dict = {}

    def error(self, t: float) -> float:
        """Raw (free-running) clock error at true time ``t``."""
        return self.offset_s + self.drift_rate * t

    def _epoch(self, t: float) -> int:
        return max(0, int(math.floor(t / self.spec.ntp_interval_s)))

    def _residual(self, epoch: int) -> float:
        cached = self._residual_cache.get(epoch)
        if cached is None:
            rng = np.random.default_rng([self.residual_seed, epoch])
            cap = self.spec.ntp_residual_s
            cached = float(rng.uniform(-cap, cap))
            self._residual_cache[epoch] = cached
        return cached

    def disciplined_error(self, t: float) -> float:
        """Error left after subtracting the latest NTP estimate.

        At the sync epoch ``t_k <= t`` NTP published an estimate of the
        error that was off by the epoch's residual; since then the
        clock has free-run at its drift rate.
        """
        epoch = self._epoch(t)
        t_sync = epoch * self.spec.ntp_interval_s
        return self._residual(epoch) + self.drift_rate * (t - t_sync)

    def measurement_error(self, t: float) -> float:
        """The error an instrument reading this clock actually carries:
        disciplined when the spec corrects, raw otherwise."""
        if self.spec.corrected:
            return self.disciplined_error(t)
        return self.error(t)

    def read(self, t: float) -> float:
        """The timestamp this clock stamps at true time ``t``."""
        return t + self.measurement_error(t)

    @property
    def error_bound_s(self) -> float:
        """A-priori bound on this clock's *disciplined* error (what the
        NTP methodology promises; an uncorrected clock may exceed it)."""
        return self.spec.disciplined_error_bound_s
