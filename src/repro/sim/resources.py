"""Per-node CPU-load and network-usage sampling (paper Figure 10).

The paper plots, per worker node, CPU load (percent) and network usage
(MB per sampling interval) over the course of a run.  Engines report
their consumed core-seconds and transferred bytes to a
:class:`ResourceMonitor`; the monitor converts them into the same
per-interval series the paper shows.

The headline observation reproduced here: Flink, being network-bound, has
the *lowest* CPU load, while Storm and Spark burn ~50% more CPU cycles
for less throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.cluster import ClusterSpec
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class ResourceSample:
    """One sampling interval of one node."""

    time: float
    node: int
    cpu_load_pct: float
    network_mb: float


class ResourceMonitor:
    """Accumulates engine resource usage and emits per-interval samples.

    Engines call :meth:`add_cpu` / :meth:`add_network` continuously; a
    periodic process snapshots the accumulators every
    ``sample_interval`` seconds.  Usage is attributed uniformly across
    worker nodes unless the engine reports per-node skew explicitly
    (single-key workloads concentrate keyed work on one node).
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: ClusterSpec,
        sample_interval_s: float = 5.0,
    ) -> None:
        self._sim = sim
        self._cluster = cluster
        self.sample_interval = float(sample_interval_s)
        self._cpu_core_seconds: Dict[int, float] = {
            n: 0.0 for n in range(cluster.workers)
        }
        self._network_bytes: Dict[int, float] = {
            n: 0.0 for n in range(cluster.workers)
        }
        self.samples: List[ResourceSample] = []
        self._process = sim.every(self.sample_interval, self._sample)

    def add_cpu(self, core_seconds: float, node: int = -1) -> None:
        """Record consumed CPU time; ``node=-1`` spreads across workers."""
        if core_seconds < 0:
            raise ValueError("core_seconds must be >= 0")
        if node >= 0:
            self._cpu_core_seconds[node % self._cluster.workers] += core_seconds
        else:
            share = core_seconds / self._cluster.workers
            for n in self._cpu_core_seconds:
                self._cpu_core_seconds[n] += share

    def add_network(self, transferred_bytes: float, node: int = -1) -> None:
        """Record bytes moved; ``node=-1`` spreads across workers."""
        if transferred_bytes < 0:
            raise ValueError("transferred_bytes must be >= 0")
        if node >= 0:
            self._network_bytes[node % self._cluster.workers] += transferred_bytes
        else:
            share = transferred_bytes / self._cluster.workers
            for n in self._network_bytes:
                self._network_bytes[n] += share

    def _sample(self, sim: Simulator) -> None:
        interval_core_seconds = self.sample_interval * self._cluster.node.cores
        for node in range(self._cluster.workers):
            cpu_pct = 100.0 * self._cpu_core_seconds[node] / interval_core_seconds
            self.samples.append(
                ResourceSample(
                    time=sim.now,
                    node=node,
                    cpu_load_pct=min(100.0, cpu_pct),
                    network_mb=self._network_bytes[node] / 1e6,
                )
            )
            self._cpu_core_seconds[node] = 0.0
            self._network_bytes[node] = 0.0

    def stop(self) -> None:
        self._process.stop()

    def node_series(self, node: int) -> List[ResourceSample]:
        """All samples for one node, in time order."""
        return [s for s in self.samples if s.node == node]

    def mean_cpu_load(self) -> float:
        """Run-wide mean CPU load across nodes and intervals."""
        if not self.samples:
            return 0.0
        return sum(s.cpu_load_pct for s in self.samples) / len(self.samples)
