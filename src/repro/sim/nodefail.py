"""Worker-node failure injection (Related Work extension).

The paper cites Lopez et al.'s finding that "Spark is more robust to
node failures but it performs up to an order of magnitude worse than
Storm and Flink" -- an experiment the paper itself does not run.  This
module provides the failure-injection half of reproducing it: a
:class:`NodeFailureSpec` kills one worker node at a configured time.

Engine-side consequences (implemented in the engine models):

- permanent capacity loss: the dead worker's cores and NIC are gone;
- a recovery pause while the engine re-schedules work (lineage
  recomputation for Spark, checkpoint restore for Flink, topology
  rebalancing and tuple replay for Storm);
- state effects: Spark recomputes lost partitions from lineage and
  Flink restores from its last checkpoint (no data loss); Storm's
  non-acked window contents on the dead worker are simply gone.

This one-shot spec is the *legacy* form: the full fault-benchmarking
layer lives in :mod:`repro.faults`, and ``ExperimentSpec(node_failure=
NodeFailureSpec(...))`` is shimmed onto it as a single
:class:`~repro.faults.schedule.NodeCrash` (see
:meth:`repro.faults.schedule.FaultSchedule.from_node_failure`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeFailureSpec:
    """Kill one worker node during the run."""

    fail_at_s: float = 60.0
    nodes: int = 1
    """How many workers fail (simultaneously, at fail_at_s)."""

    def __post_init__(self) -> None:
        if self.fail_at_s <= 0:
            raise ValueError(f"fail_at_s must be positive, got {self.fail_at_s}")
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
