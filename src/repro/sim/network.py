"""Data-plane model: the network between the driver and the SUT.

The paper observes that Flink's windowed-aggregation throughput is flat at
~1.2 M events/s across cluster sizes because the *network* saturates
(Section VI-B, Experiment 1).  With ~104-byte events, 1 Gb/s is
1e9/8/104 = 1.202 M events/s -- we therefore model the generator-to-SUT
path as a shared 1 Gb/s data-plane segment (the effective bottleneck link
of their topology) plus per-node NIC limits.

Windowed joins additionally push *result* traffic through the plane,
which is why the paper's join saturation point (1.19 M/s) sits slightly
below the aggregation one (Table III): results and ingest share capacity
here exactly as they do on the wire.

The plane is a continuous-refill token bucket, so callers at any tick
granularity observe the same average bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class NetworkSpec:
    """Static description of the data plane.

    ``segment_gbps`` is the shared generator-to-SUT bottleneck; the
    paper's testbed is 1 Gb/s.  ``burst_seconds`` bounds how much unused
    capacity can be banked -- enough for sub-second pull bursts (Storm's
    spout polls in batches) while keeping the average at the line rate.
    """

    segment_gbps: float = 1.0
    burst_seconds: float = 0.5

    @property
    def segment_bytes_per_s(self) -> float:
        return self.segment_gbps * 1e9 / 8.0


class DataPlane:
    """Token-bucket shared link with usage accounting.

    All SUT ingest traffic and all sink-result traffic is debited here.
    ``allocate`` grants at most the banked capacity; the caller throttles
    itself to the granted amount (that throttling *is* the network
    backpressure the paper observes for Flink at 4+ nodes).
    """

    def __init__(self, sim: Simulator, spec: NetworkSpec) -> None:
        self._sim = sim
        self.spec = spec
        self._available = spec.segment_bytes_per_s * spec.burst_seconds
        self._last_refill = sim.now
        self.total_ingest_bytes = 0.0
        self.total_result_bytes = 0.0

    def _refill(self) -> None:
        now = self._sim.now
        elapsed = now - self._last_refill
        if elapsed > 0:
            cap = self.spec.segment_bytes_per_s * self.spec.burst_seconds
            self._available = min(
                cap, self._available + elapsed * self.spec.segment_bytes_per_s
            )
            self._last_refill = now

    @property
    def available_bytes(self) -> float:
        """Capacity currently banked in the bucket."""
        self._refill()
        return self._available

    def allocate(self, wanted_bytes: float, kind: str = "ingest") -> float:
        """Grant up to ``wanted_bytes`` of link capacity; returns granted.

        ``kind`` is "ingest" (generator -> SUT events) or "result"
        (SUT sink -> consumers); both share the segment but are accounted
        separately for the resource-usage figures.
        """
        if wanted_bytes < 0:
            raise ValueError(f"wanted_bytes must be >= 0, got {wanted_bytes}")
        self._refill()
        granted = min(wanted_bytes, self._available)
        self._available -= granted
        if kind == "result":
            self.total_result_bytes += granted
        else:
            self.total_ingest_bytes += granted
        return granted

    def events_capacity_per_s(self, bytes_per_event: float) -> float:
        """Steady-state event rate the plane supports at a given size."""
        if bytes_per_event <= 0:
            raise ValueError("bytes_per_event must be positive")
        return self.spec.segment_bytes_per_s / bytes_per_event
