"""Named, seeded random-number streams.

Every stochastic component (key sampling, GC pauses, scheduler-delay
jitter, ...) pulls its own :class:`numpy.random.Generator` from a shared
:class:`RngRegistry`.  Streams are derived from the registry seed and the
component name via ``numpy``'s ``SeedSequence`` spawning, so:

- two components never share a stream (no accidental coupling), and
- re-running an experiment with the same seed reproduces every draw,
  regardless of the order in which components were constructed.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of independent, reproducible random streams.

    Example
    -------
    >>> reg = RngRegistry(seed=42)
    >>> a1 = reg.stream("gen-0").integers(0, 100, 3)
    >>> a2 = RngRegistry(seed=42).stream("gen-0").integers(0, 100, 3)
    >>> (a1 == a2).all()
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (stateful), so a component should fetch its stream once.
        """
        if name not in self._streams:
            # Derive a child seed from (seed, name) deterministically.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence([self.seed, name_key])
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def fork(self, salt: int) -> "RngRegistry":
        """Return a registry whose streams are independent of this one.

        Used by parameter sweeps: each trial gets ``registry.fork(i)`` so
        trials are independent yet the sweep as a whole is reproducible.
        """
        return RngRegistry(seed=(self.seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)

    def names(self) -> list:
        """Names of streams created so far (diagnostics)."""
        return sorted(self._streams)
