"""Checkpoint/resume journal for multi-trial experiments.

A sustainable-throughput search is a dozen trials; a chaos soak is
engines x policies x rounds.  Losing the process at trial ``k`` used to
mean re-running trials ``0..k-1``.  The journal checkpoints each
completed trial's *exported* outcome to a JSON file as soon as it
finishes; on ``--resume`` the orchestrator replays journaled outcomes
instead of re-running, and because the journal stores exactly the
values the final report serialises (floats survive a JSON round-trip
bit-for-bit), an interrupted-and-resumed run produces a byte-identical
final report.

The journal is keyed, not positional: deterministic orchestrators
(bisection, the chaos grid) re-derive the same keys in the same order,
so a key hit is a replay and a miss is live work.  A ``fingerprint``
string captures everything that shaped the run (spec label, seed,
search bracket, criteria); resuming against a journal whose fingerprint
differs raises :class:`JournalMismatch` -- silently mixing trials from
a different experiment would fabricate results.

Writes are atomic (per-process temp file + fsync + rename, then a
directory fsync), so a crash mid-write leaves the previous consistent
journal on disk even when several processes write journals side by
side.

Sharding (the parallel trial scheduler, :mod:`repro.sched`): each
worker process journals into its own shard file next to the parent
journal (``<name>.shard-w<k>``) under the same fingerprint, and the
parent folds shards back with :meth:`TrialJournal.merge_shards`.
Resuming merges any leftover shards from a killed run automatically,
so a dead worker costs only its in-flight trial.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Union

_FORMAT = "repro-trial-journal-v1"

#: Sentinel default for :meth:`TrialJournal.get` letting callers
#: distinguish "key absent" from a journaled ``None`` outcome.
MISSING = object()


class JournalMismatch(ValueError):
    """The journal on disk belongs to a different experiment."""


def shard_path(
    path: Union[str, pathlib.Path], worker_index: int
) -> pathlib.Path:
    """The journal shard a scheduler worker writes, next to ``path``."""
    path = pathlib.Path(path)
    return path.with_name(f"{path.name}.shard-w{int(worker_index)}")


class TrialJournal:
    """Keyed JSON store of completed-trial outcomes for one experiment."""

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        fingerprint: str,
        resume: bool = False,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fingerprint = fingerprint
        self._entries: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        if resume:
            if not self.path.exists():
                # Resuming with nothing to resume from would silently
                # re-run everything live -- surprising, so explicit.
                raise FileNotFoundError(
                    f"cannot --resume: journal {self.path} does not exist"
                )
            payload = json.loads(self.path.read_text())
            if payload.get("format") != _FORMAT:
                raise JournalMismatch(
                    f"{self.path} is not a trial journal "
                    f"(format {payload.get('format')!r})"
                )
            found = payload.get("fingerprint")
            if found != fingerprint:
                raise JournalMismatch(
                    f"journal {self.path} was written by a different "
                    f"experiment:\n  journal: {found}\n  current: {fingerprint}"
                )
            self._entries = dict(payload.get("entries", {}))
            # A run killed mid-parallel leaves worker shards holding
            # trials whose completion never reached the parent journal;
            # fold them in so --resume replays *everything* completed.
            self.merge_shards()
        else:
            # A fresh (non-resume) journal starts a new experiment:
            # shards left behind by an unrelated previous run must not
            # leak into this run's end-of-pool merge.
            for stale in self.shard_paths():
                stale.unlink()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership without touching the hit/miss counters."""
        return key in self._entries

    def get(self, key: str, default: Any = None) -> Optional[Any]:
        """The journaled outcome for ``key``, or ``default`` (counts
        hit/miss).

        A journaled ``None`` (a trial that legitimately exported a null
        outcome) is a *hit* and is returned as ``None``; pass the
        module-level :data:`MISSING` sentinel as ``default`` (or test
        ``key in journal`` first) to tell it apart from a miss.
        """
        entry = self._entries.get(key, MISSING)
        if entry is MISSING:
            self.misses += 1
            return default
        self.hits += 1
        return entry

    def record(self, key: str, entry: Any) -> None:
        """Checkpoint one completed trial (flushed to disk immediately)."""
        self._entries[key] = entry
        self._flush()

    def _flush(self) -> None:
        payload = {
            "format": _FORMAT,
            "fingerprint": self.fingerprint,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Per-process temp name: concurrent writers (scheduler parent
        # plus worker shards in the same directory) must never clobber
        # each other's half-written temp file.
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            handle.flush()
            # Without the fsync, a crash after os.replace can still
            # surface a zero-length "journal" once the page cache is
            # lost -- the atomicity claim needs the data durable first.
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        """Make the rename itself durable (best effort off-POSIX)."""
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - platform-specific
            pass
        finally:
            os.close(dir_fd)

    # -- shard protocol (parallel scheduler) ---------------------------------

    def shard_paths(self) -> List[pathlib.Path]:
        """Worker shards currently on disk next to this journal."""
        if not self.path.parent.exists():
            return []
        return sorted(self.path.parent.glob(self.path.name + ".shard-*"))

    def absorb(self, path: Union[str, pathlib.Path]) -> int:
        """Fold another journal file's entries into this one (in
        memory; the caller flushes).  The shard must carry the same
        fingerprint -- mixing experiments would fabricate results.
        Existing keys win: per-trial outcomes are deterministic, so a
        duplicate key is the same digest recorded twice.  Returns the
        number of new entries."""
        payload = json.loads(pathlib.Path(path).read_text())
        if payload.get("format") != _FORMAT:
            raise JournalMismatch(
                f"{path} is not a trial journal "
                f"(format {payload.get('format')!r})"
            )
        found = payload.get("fingerprint")
        if found != self.fingerprint:
            raise JournalMismatch(
                f"shard {path} was written by a different experiment:\n"
                f"  shard:   {found}\n  current: {self.fingerprint}"
            )
        added = 0
        for key, entry in payload.get("entries", {}).items():
            if key not in self._entries:
                self._entries[key] = entry
                added += 1
        return added

    def merge_shards(self, remove: bool = True) -> int:
        """Fold every on-disk shard into this journal and (by default)
        delete the shard files; returns the number of new entries."""
        added = 0
        merged_any = False
        for shard in self.shard_paths():
            added += self.absorb(shard)
            merged_any = True
            if remove:
                shard.unlink()
        if added:
            self._flush()
        elif merged_any and remove and self._entries:
            # Shards held nothing new, but they are gone now -- make
            # sure the parent journal holding their content is durable.
            self._flush()
        return added

    def stats(self) -> Dict[str, float]:
        return {
            "journal.entries": float(len(self._entries)),
            "journal.hits": float(self.hits),
            "journal.misses": float(self.misses),
        }
