"""Checkpoint/resume journal for multi-trial experiments.

A sustainable-throughput search is a dozen trials; a chaos soak is
engines x policies x rounds.  Losing the process at trial ``k`` used to
mean re-running trials ``0..k-1``.  The journal checkpoints each
completed trial's *exported* outcome to a JSON file as soon as it
finishes; on ``--resume`` the orchestrator replays journaled outcomes
instead of re-running, and because the journal stores exactly the
values the final report serialises (floats survive a JSON round-trip
bit-for-bit), an interrupted-and-resumed run produces a byte-identical
final report.

The journal is keyed, not positional: deterministic orchestrators
(bisection, the chaos grid) re-derive the same keys in the same order,
so a key hit is a replay and a miss is live work.  A ``fingerprint``
string captures everything that shaped the run (spec label, seed,
search bracket, criteria); resuming against a journal whose fingerprint
differs raises :class:`JournalMismatch` -- silently mixing trials from
a different experiment would fabricate results.

Writes are atomic (temp file + rename), so a crash mid-write leaves the
previous consistent journal on disk.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Optional, Union

_FORMAT = "repro-trial-journal-v1"


class JournalMismatch(ValueError):
    """The journal on disk belongs to a different experiment."""


class TrialJournal:
    """Keyed JSON store of completed-trial outcomes for one experiment."""

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        fingerprint: str,
        resume: bool = False,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fingerprint = fingerprint
        self._entries: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        if resume:
            if not self.path.exists():
                # Resuming with nothing to resume from would silently
                # re-run everything live -- surprising, so explicit.
                raise FileNotFoundError(
                    f"cannot --resume: journal {self.path} does not exist"
                )
            payload = json.loads(self.path.read_text())
            if payload.get("format") != _FORMAT:
                raise JournalMismatch(
                    f"{self.path} is not a trial journal "
                    f"(format {payload.get('format')!r})"
                )
            found = payload.get("fingerprint")
            if found != fingerprint:
                raise JournalMismatch(
                    f"journal {self.path} was written by a different "
                    f"experiment:\n  journal: {found}\n  current: {fingerprint}"
                )
            self._entries = dict(payload.get("entries", {}))

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[Any]:
        """The journaled outcome for ``key``, or None (counts hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def record(self, key: str, entry: Any) -> None:
        """Checkpoint one completed trial (flushed to disk immediately)."""
        self._entries[key] = entry
        self._flush()

    def _flush(self) -> None:
        payload = {
            "format": _FORMAT,
            "fingerprint": self.fingerprint,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def stats(self) -> Dict[str, float]:
        return {
            "journal.entries": float(len(self._entries)),
            "journal.hits": float(self.hits),
            "journal.misses": float(self.misses),
        }
