"""Trial watchdog: abort hung or stalled trials, retry with backoff.

A sweep is only as robust as its slowest trial: one wedged run (a
pathological parameter draw, an engine bug, a host hiccup) stalls the
whole bisection.  The watchdog rides on the driver via the same
``driver_hook`` seam the AIMD controller uses and enforces two budgets:

- **deadline** (``timeout_s``): wall-clock seconds one attempt may take;
- **progress** (``stall_s``): simulated seconds the driver queues may go
  without any pushed *or* pulled weight changing.

Tripping either raises a :class:`~repro.sim.failures.MeasurementFault`
out of the simulation loop; the driver's existing failure path converts
it into a failed :class:`TrialResult` that keeps partial diagnostics.
:func:`repro.core.experiment.run_experiment_with_watchdog` then retries
under capped exponential backoff, retaining an :class:`AttemptRecord`
per attempt so a flaky trial's history is never silently discarded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.sim.failures import MeasurementFault, TrialStalled, TrialTimeout


@dataclass(frozen=True)
class WatchdogSpec:
    """Budgets and retry policy for watched trials."""

    timeout_s: Optional[float] = None
    """Wall-clock budget per attempt (``None`` disables the deadline)."""
    stall_s: Optional[float] = None
    """Simulated seconds without driver progress before aborting
    (``None`` disables progress checking)."""
    check_interval_s: float = 1.0
    """Simulated seconds between watchdog checks."""
    max_attempts: int = 3
    """Total attempts (first run + retries)."""
    backoff_base_s: float = 0.1
    """Wall-clock sleep before the first retry."""
    backoff_factor: float = 2.0
    """Multiplier applied to the sleep per further retry."""
    backoff_cap_s: float = 30.0
    """Upper bound on any single backoff sleep."""
    reseed: bool = True
    """Bump the spec seed per retry: a deterministic simulator replays
    the same wedge bit-for-bit, so retrying the identical seed can only
    help against *wall-clock* flakiness, not stalls."""

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s < 0:
            raise ValueError(f"timeout_s must be >= 0, got {self.timeout_s}")
        if self.stall_s is not None and self.stall_s <= 0:
            raise ValueError(f"stall_s must be positive, got {self.stall_s}")
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_cap_s < 0:
            raise ValueError("backoff_cap_s must be >= 0")

    def backoff_s(self, retry_index: int) -> float:
        """Capped exponential backoff before retry ``retry_index`` (0-based)."""
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor**retry_index,
        )


@dataclass
class AttemptRecord:
    """What one watched attempt did (kept on the final TrialResult)."""

    attempt: int
    seed: int
    wall_s: float
    outcome: str
    """``completed`` | ``timeout`` | ``stalled`` | ``failed``."""
    failure: Optional[str] = None
    backoff_s: float = 0.0
    """Sleep taken *after* this attempt (0 for the last one)."""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "seed": self.seed,
            "wall_s": self.wall_s,
            "outcome": self.outcome,
            "failure": self.failure,
            "backoff_s": self.backoff_s,
        }


class TrialWatchdog:
    """One attempt's watchdog, installed on the driver via driver_hook."""

    def __init__(self, spec: WatchdogSpec) -> None:
        self.spec = spec
        self.tripped: Optional[MeasurementFault] = None
        self._driver = None
        self._process = None
        self._wall_start = 0.0
        self._last_progress = (-1.0, -1.0)
        self._last_progress_t = 0.0

    def install(self, driver) -> None:
        """Attach to an assembled :class:`BenchmarkDriver`."""
        if self._driver is not None:
            raise RuntimeError("watchdog already installed")
        self._driver = driver
        self._wall_start = time.monotonic()
        self._last_progress_t = driver.sim.now
        self._process = driver.sim.every(
            self.spec.check_interval_s, self._check
        )

    def _check(self, sim) -> None:
        spec = self.spec
        if (
            spec.timeout_s is not None
            and time.monotonic() - self._wall_start > spec.timeout_s
        ):
            self._trip(
                TrialTimeout(
                    f"trial exceeded its {spec.timeout_s:g}s wall-clock "
                    f"deadline at t={sim.now:g}s",
                    at_time=sim.now,
                )
            )
        if spec.stall_s is None:
            return
        queues = self._driver.queues
        progress = (queues.total_pushed_weight, queues.total_pulled_weight)
        if progress != self._last_progress:
            self._last_progress = progress
            self._last_progress_t = sim.now
        elif sim.now - self._last_progress_t >= spec.stall_s:
            self._trip(
                TrialStalled(
                    f"no driver progress (push or pull) for "
                    f"{sim.now - self._last_progress_t:g}s at t={sim.now:g}s",
                    at_time=sim.now,
                )
            )

    def _trip(self, failure: MeasurementFault) -> None:
        self.tripped = failure
        if self._process is not None:
            self._process.stop()
        obs = self._driver.obs
        if obs is not None:
            kind = "timeout" if isinstance(failure, TrialTimeout) else "stalled"
            obs.add_event(f"watchdog.{kind}", self._driver.sim.now)
        # Propagates out of the simulation loop; the driver's SutFailure
        # handler converts it into a failed TrialResult.
        raise failure

    def outcome(self, result) -> str:
        """Classify the attempt for its :class:`AttemptRecord`."""
        if isinstance(self.tripped, TrialTimeout):
            return "timeout"
        if isinstance(self.tripped, TrialStalled):
            return "stalled"
        return "failed" if result.failed else "completed"
