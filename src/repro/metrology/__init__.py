"""repro.metrology -- hardening of the measurement plane itself.

PRs 2 and 4 made the SUT a fault domain; this package does the same for
the *instrument*.  Three defenses, each answering one way a benchmark
driver silently produces wrong numbers:

- :mod:`repro.metrology.skew` -- clock disagreement between the
  generator nodes (which stamp event times) and the sink reader
  corrupts event-time latency.  The skew model applies per-node clock
  errors (:mod:`repro.sim.clock`) to the measurement plane and exports
  a hard bound on the residual error in ``TrialResult.diagnostics``.
- :mod:`repro.metrology.watchdog` -- a hung or stalled trial wedges a
  whole sweep.  The watchdog aborts non-progressing or over-deadline
  trials and the retry runner re-runs them under capped exponential
  backoff, keeping per-attempt diagnostics.
- :mod:`repro.metrology.journal` -- a crashed sweep loses hours of
  completed trials.  The journal checkpoints per-trial outcomes to
  JSON so an interrupted search or chaos soak resumes byte-identically.
"""

from repro.metrology.journal import JournalMismatch, TrialJournal
from repro.metrology.skew import SkewModel
from repro.metrology.watchdog import (
    AttemptRecord,
    TrialWatchdog,
    WatchdogSpec,
)

__all__ = [
    "AttemptRecord",
    "JournalMismatch",
    "SkewModel",
    "TrialJournal",
    "TrialWatchdog",
    "WatchdogSpec",
]
