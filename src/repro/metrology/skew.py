"""Skew-aware correction layer for driver-side latency measurement.

Event-time latency (Definition 1) subtracts a timestamp stamped by a
*generator node's* clock from a read taken by the *sink reader's*
clock.  With per-node clock errors ``e_gen`` and ``e_sink`` the
measured latency is::

    measured = (emit + e_sink(emit)) - (event_time + e_anchor(event_time))
             = true_latency + e_sink(emit) - e_anchor(event_time)

so the measurement error is the *difference* of two clock errors -- it
never cancels unless the clocks agree.  :class:`SkewModel` owns one
:class:`~repro.sim.clock.NodeClock` per generator instance plus one for
the sink reader, evaluates both error terms, and exports the a-priori
bound ``2 * (ntp_residual + drift_cap * ntp_interval)`` that NTP
discipline guarantees.

Windowed anchors (Definitions 3 and 4) are *maxima* over contributing
inputs.  The fleet stamps each tick at the same true time, so the
realized anchor under skew is ``t + max_i e_i(t)`` -- the worst clock
wins.  ``anchor_error`` therefore takes the max over generator clocks,
which keeps the model faithful without perturbing window membership.

Crucially the skew is applied **in the measurement plane only**: the
simulation's event times, window assignment, and engine dynamics are
byte-identical with skew on or off.  That is not a shortcut -- it is
what makes the error bound *testable*: the same-seed skew-free run is
the golden truth, and every skewed sample differs from its golden twin
by exactly ``e_sink - e_anchor``, which the correction bounds.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.sim.clock import ClockSkewSpec, NodeClock


class SkewModel:
    """Clock fleet + error evaluation for one trial's measurement plane."""

    def __init__(
        self,
        spec: ClockSkewSpec,
        generator_clocks: List[NodeClock],
        sink_clock: NodeClock,
    ) -> None:
        if not generator_clocks:
            raise ValueError("need at least one generator clock")
        self.spec = spec
        self.generator_clocks = list(generator_clocks)
        self.sink_clock = sink_clock
        # Realized worst-case measurement error, tracked by the
        # collector as samples flow through (diagnostics export).
        self.max_abs_error_s = 0.0
        self.samples = 0

    @classmethod
    def build(
        cls, spec: ClockSkewSpec, rng: np.random.Generator, instances: int
    ) -> "SkewModel":
        """One clock per generator instance plus the sink reader's."""
        clocks = spec.build_fleet(rng, instances + 1)
        return cls(
            spec=spec, generator_clocks=clocks[:instances], sink_clock=clocks[-1]
        )

    @property
    def bound_s(self) -> float:
        """A-priori bound on ``|measured - true|`` event-time latency:
        one disciplined-clock bound for the anchor stamp plus one for
        the sink read."""
        return 2.0 * self.spec.disciplined_error_bound_s

    def anchor_error(self, event_time: float) -> float:
        """Clock error carried by a (possibly windowed) event-time
        anchor stamped at true time ``event_time``: the max over the
        fleet, because window anchors are maxima over inputs the whole
        fleet stamped at the same tick."""
        clocks = self.generator_clocks
        error = clocks[0].measurement_error(event_time)
        for clock in clocks[1:]:
            e = clock.measurement_error(event_time)
            if e > error:
                error = e
        return error

    def emit_error(self, emit_time: float) -> float:
        """Clock error of the sink-side latency read at ``emit_time``."""
        return self.sink_clock.measurement_error(emit_time)

    def observe(self, error_s: float) -> None:
        """Track the realized per-sample measurement error (collector
        hot path calls this once per output)."""
        if error_s < 0:
            error_s = -error_s
        if error_s > self.max_abs_error_s:
            self.max_abs_error_s = error_s
        self.samples += 1

    @property
    def within_bound(self) -> bool:
        """Whether every observed sample honoured the exported bound
        (always true for corrected clocks; the point of the model is
        that uncorrected clocks violate it)."""
        return self.max_abs_error_s <= self.bound_s

    def sync_epochs(self, duration_s: float) -> List[float]:
        """NTP sync times inside the trial (timeline annotations)."""
        interval = self.spec.ntp_interval_s
        times = []
        t = 0.0
        while t < duration_s:
            times.append(t)
            t += interval
        return times

    def diagnostics(self) -> Dict[str, float]:
        """Merged into ``TrialResult.diagnostics`` by the collector."""
        return {
            "metrology.skew_bound_s": self.bound_s,
            "metrology.skew_max_error_s": self.max_abs_error_s,
            "metrology.skew_corrected": 1.0 if self.spec.corrected else 0.0,
            "metrology.skew_within_bound": 1.0 if self.within_bound else 0.0,
        }
