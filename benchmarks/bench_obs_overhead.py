"""Microbenchmark: observability must be free when it is off.

The event-lifecycle observability layer (metrics registry + sampled
tracing) instruments the hottest paths in the framework -- queue
push/pull, source ingest, window adds, sink emission.  The design
contract is *zero cost when disabled*: with ``observability=None`` the
only residual work is ``record.trace is None`` branches, and even the
fully-enabled configurations are polled (gauges) or 1-in-N sampled
(traces), never per-event.

This bench pins the contract down.  It runs the same trial spec under
three configurations:

- ``off``      -- ``observability=None`` (the pre-observability path);
- ``metrics``  -- ``ObsSpec(trace_sample_rate=0)``: registry sampling
  only, no tracing;
- ``traced``   -- ``ObsSpec(trace_sample_rate=1000)``: registry plus
  1-in-1000 lifecycle tracing;

interleaved round-robin, and reports each enabled configuration's
overhead as the median across rounds of its per-round ratio against
``off`` (robust to machine noise during any single round).  It also asserts the three runs
produce IDENTICAL measured results (tracing must never perturb the
simulation; the sampler is deterministic and out-of-band).

Run directly (not collected by the tier-1 pytest run)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --check   # gate

Exit status is non-zero if the identity check fails, or if ``--check``
is given and any enabled configuration exceeds ``--max-overhead``
(default 5%).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.obs.context import ObsSpec

IDENTITY_TOL = 1e-12


def build_spec(duration_s: float, obs: ObsSpec | None) -> ExperimentSpec:
    return ExperimentSpec(
        engine="flink",
        workers=2,
        profile=0.4e6,
        duration_s=duration_s,
        seed=7,
        monitor_resources=False,
        observability=obs,
    )


def time_configs(
    duration_s: float, configs, repeats: int
) -> tuple[dict, dict]:
    """Interleaved per-round wall times for every configuration.

    Each round runs every configuration back-to-back before the next
    round starts, so machine-wide drift (another process waking up
    mid-bench) lands on all configurations roughly equally instead of
    inflating whichever block happened to run last.  Returns the full
    per-round timing lists; overhead is judged per round (ratio against
    that round's baseline) so a single noisy round cannot flip the
    gate.
    """
    timings = {label: [] for label, _ in configs}
    results = {}
    run_experiment(build_spec(min(duration_s, 20.0), None))  # warmup
    for _ in range(repeats):
        for label, obs in configs:
            start = time.perf_counter()
            results[label] = run_experiment(build_spec(duration_s, obs))
            timings[label].append(time.perf_counter() - start)
    return timings, results


def median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def assert_identical(baseline, other, label: str) -> list[str]:
    """The simulation must not notice observability at all."""
    failures = []
    pairs = [
        ("mean_ingest_rate", baseline.mean_ingest_rate, other.mean_ingest_rate),
        ("event_mean", baseline.event_latency.mean, other.event_latency.mean),
        ("event_p99", baseline.event_latency.p99, other.event_latency.p99),
        (
            "proc_mean",
            baseline.processing_latency.mean,
            other.processing_latency.mean,
        ),
        ("outputs", float(len(baseline.collector)), float(len(other.collector))),
    ]
    for name, a, b in pairs:
        if abs(a - b) > IDENTITY_TOL * max(1.0, abs(a)):
            failures.append(f"{label}: {name} differs: {a!r} vs {b!r}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration", type=float, default=120.0,
        help="simulated seconds per trial (default: 120)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="wall-time repeats per configuration, min taken (default: 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 60 simulated seconds, 5 repeats",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any enabled config exceeds --max-overhead",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="relative overhead gate for --check (default: 0.05)",
    )
    args = parser.parse_args(argv)
    # Sub-second baselines make a 5% gate flaky; 60 simulated seconds
    # (~1s wall) over 5 interleaved rounds is the smallest reliable
    # configuration.
    duration = 60.0 if args.quick else args.duration
    repeats = 5 if args.quick else args.repeats

    configs = [
        ("off", None),
        ("metrics", ObsSpec(trace_sample_rate=0)),
        ("traced", ObsSpec(trace_sample_rate=1000)),
    ]
    timings, results = time_configs(duration, configs, repeats)

    failures = []
    for label in ("metrics", "traced"):
        failures += assert_identical(results["off"], results[label], label)

    base_rounds = timings["off"]
    print(
        f"obs overhead bench: {duration:g} simulated s, "
        f"median of {repeats} interleaved rounds"
    )
    print(f"  {'off':<8} {min(base_rounds):8.3f}s  (baseline)")
    over_limit = []
    for label in ("metrics", "traced"):
        # Overhead is a per-round ratio against that round's baseline,
        # then the median across rounds -- robust to machine noise that
        # min-of-N is not (one config lucking into a quiet window).
        overhead = median(
            t / b for t, b in zip(timings[label], base_rounds)
        ) - 1.0
        print(
            f"  {label:<8} {min(timings[label]):8.3f}s  ({overhead:+7.2%})"
        )
        if overhead > args.max_overhead:
            over_limit.append(f"{label}: {overhead:+.2%}")
    traced = results["traced"].observability
    print(
        f"  traced run: {traced.trace_log.started_count} traces started, "
        f"{traced.trace_log.completed_count} completed"
    )

    for failure in failures:
        print(f"IDENTITY FAILURE: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.check and over_limit:
        print(
            "OVERHEAD GATE FAILED (limit "
            f"{args.max_overhead:.0%}): {'; '.join(over_limit)}",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
