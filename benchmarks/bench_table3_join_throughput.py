"""Table III: sustainable throughput for windowed joins.

Spark and Flink on 2/4/8 nodes with the purchases-ads join (Listing 1,
lowered selectivity); the naive Storm join is measured on 2 nodes and
shown to be unstable beyond that, as in the paper's Experiment 2 text.

Expected shape (paper): Flink 0.85 / 1.12 / 1.19 M/s (network-bound at
8 nodes, slightly below the aggregation bound because join results share
the wire); Spark 0.36 / 0.63 / 0.94 M/s; Storm naive join ~0.14 M/s on
2 nodes, failing on larger clusters.
"""

import pytest

from benchmarks.conftest import WORKER_SWEEP, emit, join_spec
from repro.analysis.paper_values import (
    PAPER_STORM_NAIVE_JOIN_THROUGHPUT_2NODE,
    PAPER_TABLE1_AGG_THROUGHPUT,
    PAPER_TABLE3_JOIN_THROUGHPUT,
)
from repro.analysis.stats import within_factor
from repro.core.experiment import run_experiment
from repro.core.report import throughput_table
from repro.core.sustainable import find_sustainable_throughput


@pytest.mark.benchmark(group="table3")
def test_table3_join_sustainable_throughput(benchmark, join_sustainable_rates):
    def measure():
        rates = dict(join_sustainable_rates)
        # The naive Storm join: search on 2 nodes only.
        storm = find_sustainable_throughput(
            join_spec("storm", 2), high_rate=0.4e6, rel_tol=0.05, max_trials=8
        )
        rates[("storm", 2)] = storm.sustainable_rate
        # Beyond 2 workers the naive join must fail outright.
        larger = run_experiment(join_spec("storm", 4, profile=0.2e6))
        assert larger.failed and "naive" in larger.failure
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = throughput_table(
        "Table III: sustainable throughput, windowed join (8s, 4s)",
        measured=rates,
        paper={
            **PAPER_TABLE3_JOIN_THROUGHPUT,
            ("storm", 2): PAPER_STORM_NAIVE_JOIN_THROUGHPUT_2NODE,
        },
        workers=WORKER_SWEEP,
    )
    emit("table3_join_throughput", table)

    for key, paper_rate in PAPER_TABLE3_JOIN_THROUGHPUT.items():
        assert within_factor(rates[key], paper_rate, 2.0), (key, rates[key])
    # Flink wins at every size and scales until the network binds.
    for w in WORKER_SWEEP:
        assert rates[("flink", w)] > rates[("spark", w)]
    assert rates[("flink", 2)] < rates[("flink", 4)]
    # 8-node Flink join sits at/below the aggregation network bound.
    assert rates[("flink", 8)] <= PAPER_TABLE1_AGG_THROUGHPUT[("flink", 8)] * 1.1
    # The naive Storm join is far below both.
    assert rates[("storm", 2)] < 0.5 * rates[("spark", 2)]
