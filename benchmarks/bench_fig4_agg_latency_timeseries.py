"""Figure 4: windowed-aggregation latency distributions over time.

18 panels in the paper: {Storm, Spark, Flink} x {2, 4, 8 nodes} x
{max, 90% throughput}.  Each panel here is the binned event-time
latency series of one run at the corresponding rate; panels are printed
as sparklines plus min/max ranges.

Expected shape (paper): fluctuations shrink at 90% load everywhere;
Storm/Flink hug zero with spikes, Spark shows stable upper and lower
bounds set by the batch interval.
"""

import numpy as np
import pytest

from benchmarks.conftest import MEASURE_DURATION_S, agg_spec, emit
from repro.analysis.ascii_plots import render_panels
from repro.core.experiment import run_experiment


@pytest.mark.benchmark(group="fig4")
def test_fig4_latency_timeseries(benchmark, agg_sustainable_rates):
    def measure():
        panels = {}
        runs = {}
        for (engine, workers), rate in sorted(agg_sustainable_rates.items()):
            for label, factor in (("max", 1.0), ("90%", 0.9)):
                result = run_experiment(
                    agg_spec(
                        engine,
                        workers,
                        profile=rate * factor,
                        duration_s=MEASURE_DURATION_S,
                    )
                )
                key = f"{engine} {workers}-node {label}"
                panels[key] = result.collector.binned_series(
                    bin_s=5.0, start_time=result.warmup_s
                )
                runs[key] = result
        return panels, runs

    panels, runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "fig4_agg_latency_timeseries",
        "Figure 4: aggregation event-time latency over time (binned 5 s)\n"
        + render_panels(panels, unit="s"),
    )

    # Shape: 90% load has smaller fluctuation (std of the binned series)
    # than max load in the clear majority of panels.
    calmer = 0
    total = 0
    for key in panels:
        if not key.endswith("max"):
            continue
        partner = key.replace("max", "90%")
        a = np.std(panels[key].values) if len(panels[key]) else 0.0
        b = np.std(panels[partner].values) if len(panels[partner]) else 0.0
        total += 1
        if b <= a * 1.05:
            calmer += 1
    assert calmer >= total * 2 // 3, f"only {calmer}/{total} panels calmer at 90%"
    # Spark's binned latency floor is far above Flink's (batch interval).
    spark_floor = min(panels["spark 2-node max"].values)
    flink_floor = min(panels["flink 2-node max"].values)
    assert spark_floor > 5 * flink_floor
