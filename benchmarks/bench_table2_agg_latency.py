"""Table II: latency statistics for windowed aggregations.

Runs every engine at its measured sustainable-maximum rate and at 90%
of it (exactly the paper's two workloads) and reports avg/min/max and
the (90, 95, 99) quantiles of event-time latency, measured at the sink
against generation timestamps.

Expected shape (paper): Flink lowest (fractions of a second), Storm in
the 1-2 s range *growing* with cluster size, Spark highest (~3-4 s,
batch-dominated) but with the tightest spread and *shrinking* with
cluster size; the 90% rows sit at or below the max-load rows.
"""

import pytest

from benchmarks.conftest import MEASURE_DURATION_S, WORKER_SWEEP, agg_spec, emit
from repro.analysis.paper_values import PAPER_TABLE2_AGG_LATENCY
from repro.core.experiment import run_experiment
from repro.core.report import latency_table


@pytest.mark.benchmark(group="table2")
def test_table2_agg_latency(benchmark, agg_sustainable_rates):
    def measure():
        stats = {}
        for (engine, workers), rate in agg_sustainable_rates.items():
            for label, factor in ((engine, 1.0), (f"{engine}(90%)", 0.9)):
                result = run_experiment(
                    agg_spec(
                        engine,
                        workers,
                        profile=rate * factor,
                        duration_s=MEASURE_DURATION_S,
                    )
                )
                assert not result.failed, (label, workers, result.failure)
                stats[(label, workers)] = result.event_latency
        return stats

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = latency_table(
        "Table II: event-time latency, windowed aggregation (max and 90% load)",
        measured=stats,
        paper=PAPER_TABLE2_AGG_LATENCY,
        workers=WORKER_SWEEP,
    )
    emit("table2_agg_latency", table)

    for w in WORKER_SWEEP:
        # Engine ordering: Flink < Storm < Spark on average latency.
        assert (
            stats[("flink", w)].mean
            < stats[("storm", w)].mean
            < stats[("spark", w)].mean
        )
        # 90% load is never slower on average (within noise).
        for engine in ("storm", "spark", "flink"):
            assert (
                stats[(f"{engine}(90%)", w)].mean
                <= stats[(engine, w)].mean * 1.15
            )
    # Storm latency grows with cluster size; Spark's shrinks.
    assert stats[("storm", 8)].mean > stats[("storm", 2)].mean
    assert stats[("spark", 8)].mean < stats[("spark", 2)].mean * 1.05
    # Spark has the tightest relative spread (mini-batching).
    for w in WORKER_SWEEP:
        spark_rel = stats[("spark", w)].std / stats[("spark", w)].mean
        storm_rel = stats[("storm", w)].std / stats[("storm", w)].mean
        assert spark_rel < storm_rel
