"""Figure 8: event-time vs processing-time latency at sustainable load.

The aggregation query (8s, 4s) on a 2-node cluster, each engine at its
sustainable maximum -- the paper's Experiment 6.  Even without overload
there is a visible difference between the two latencies: with Spark,
"input tuples spend most of the time in driver queues" (receiver
throttling), while Flink's two series nearly coincide.
"""

import pytest

from benchmarks.conftest import MEASURE_DURATION_S, agg_spec, emit
from repro.core.experiment import run_experiment
from repro.core.latency import EVENT_TIME, PROCESSING_TIME
from repro.core.report import latency_table


@pytest.mark.benchmark(group="fig8")
def test_fig8_event_vs_processing(benchmark, agg_sustainable_rates):
    def measure():
        rows = {}
        for engine in ("storm", "spark", "flink"):
            rate = agg_sustainable_rates[(engine, 2)]
            result = run_experiment(
                agg_spec(engine, 2, profile=rate, duration_s=MEASURE_DURATION_S)
            )
            assert not result.failed, (engine, result.failure)
            rows[(f"{engine} event-time", 2)] = result.event_latency
            rows[(f"{engine} processing", 2)] = result.processing_latency
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "fig8_event_vs_processing",
        latency_table(
            "Figure 8: event-time vs processing-time latency, "
            "aggregation (8s,4s), 2-node, sustainable max",
            measured=rows,
            workers=(2,),
        ),
    )

    for engine in ("storm", "spark", "flink"):
        event = rows[(f"{engine} event-time", 2)]
        proc = rows[(f"{engine} processing", 2)]
        # Processing time is a component of event time (Definition 1 vs 2).
        assert event.mean >= proc.mean - 0.05, engine
    # Deviation note (EXPERIMENTS.md): the paper attributes the largest
    # sustainable-load gap to Spark's driver-queue waiting; in this
    # reproduction the gap at the *found* maximum is engine-dependent
    # run to run, and the Spark-specific queueing shows decisively only
    # under overload (Figure 7).  No cross-engine ranking is asserted.
