"""Benchmark harness: one module per table and figure of the paper."""
