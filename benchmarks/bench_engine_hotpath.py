"""Microbenchmark: the engine-side ingest/process hot path.

PR 1 vectorised the driver-side *measurement* path; this bench gates
the engine-side counterpart: record cohorts now flow through the tick
loop as NumPy column blocks (:mod:`repro.core.batch`) instead of
per-Record Python loops.  The scalar path is kept verbatim behind
``REPRO_ENGINE_SCALAR=1`` as the reference implementation, and this
bench runs the SAME seeded trial through both paths, asserting:

- numeric identity of the sink table (per-``(window_end, key)`` summed
  value and weight), the latency summaries, and the engine/driver
  diagnostics ledgers, to 1e-9 (in practice the paths are bitwise
  identical -- the columnar kernels are sequential-fold twins of the
  scalar loops, see DESIGN.md section 14);
- a wall-clock speedup of the vectorised trial over the scalar one.

Run directly (not collected by the tier-1 pytest run)::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py                 # full, 1M events
    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py --events 100000  # CI smoke

Exit status is non-zero if the identity check fails, or if
``--assert-speedup X`` is given and the measured speedup is below X.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Tuple

from repro.core.batch import SCALAR_ENV
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.workloads.keys import UniformKeys
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

IDENTITY_TOL = 1e-9

#: Diagnostics keyed on host wall-clock, not simulation state -- the
#: only entries allowed to differ between the two runs.
WALL_CLOCK_KEYS = frozenset(
    {"driver.summary_s", "collector.collect_s", "collector.samples_per_s"}
)


def bench_spec(events: int, rate: float, keys: int) -> ExperimentSpec:
    """One deterministic flink aggregation trial sized to ``events``.

    Dense mode with uniform keys keeps every tick's cohort block the
    same shape, so the scalar/vector timing difference is purely the
    per-cohort loop vs the columnar kernels.
    """
    return ExperimentSpec(
        engine="flink",
        query=WindowedAggregationQuery(
            window=WindowSpec(8.0, 4.0), keys=UniformKeys(keys)
        ),
        workers=2,
        profile=rate,
        duration_s=events / rate,
        seed=4242,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        keep_outputs=True,
    )


def run_mode(spec: ExperimentSpec, scalar: bool, repeats: int):
    """Best-of-``repeats`` wall time for one execution mode."""
    saved = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1" if scalar else "0"
    try:
        best = float("inf")
        result = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_experiment(spec)
            best = min(best, time.perf_counter() - t0)
        return best, result
    finally:
        if saved is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = saved


def sink_table(result) -> Dict[Tuple[float, int], Tuple[float, float]]:
    """Canonical sink contents, as in the conformance suite."""
    table: Dict[Tuple[float, int], Tuple[float, float]] = {}
    for out in result.collector.outputs:
        key = (round(out.window_end, 9), out.key)
        value, weight = table.get(key, (0.0, 0.0))
        table[key] = (value + out.value, weight + out.weight)
    return table


def compare_tables(scalar, vector) -> List[str]:
    problems: List[str] = []
    s_table, v_table = sink_table(scalar), sink_table(vector)
    if set(s_table) != set(v_table):
        only_s = len(set(s_table) - set(v_table))
        only_v = len(set(v_table) - set(s_table))
        problems.append(
            f"sink (window, key) sets differ: {only_s} scalar-only, "
            f"{only_v} vector-only"
        )
        return problems
    for key in sorted(s_table):
        for name, s, v in zip(
            ("value", "weight"), s_table[key], v_table[key]
        ):
            if s != v and abs(s - v) > IDENTITY_TOL:
                problems.append(f"sink[{key}].{name}: scalar={s!r} vector={v!r}")
    return problems


def compare_diagnostics(scalar, vector) -> List[str]:
    problems: List[str] = []
    s_diag, v_diag = scalar.diagnostics, vector.diagnostics
    if set(s_diag) != set(v_diag):
        problems.append(
            f"diagnostic key sets differ: {sorted(set(s_diag) ^ set(v_diag))}"
        )
    for key in sorted(set(s_diag) & set(v_diag)):
        if key in WALL_CLOCK_KEYS:
            continue
        s, v = s_diag[key], v_diag[key]
        if s != v and abs(s - v) > IDENTITY_TOL:
            problems.append(f"diagnostics[{key}]: scalar={s!r} vector={v!r}")
    return problems


def compare_summaries(scalar, vector) -> List[str]:
    problems: List[str] = []
    for kind in ("event_latency", "processing_latency"):
        s_sum, v_sum = getattr(scalar, kind), getattr(vector, kind)
        for field in ("count", "weight", "mean", "minimum", "maximum",
                      "p90", "p95", "p99", "std"):
            s, v = getattr(s_sum, field), getattr(v_sum, field)
            if s != v and abs(s - v) > IDENTITY_TOL:
                problems.append(f"{kind}.{field}: scalar={s!r} vector={v!r}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=1_000_000,
                        help="total offered events (rate * sim duration)")
    parser.add_argument("--rate", type=float, default=20_000.0,
                        help="offered load in events/s")
    parser.add_argument("--keys", type=int, default=500,
                        help="uniform key-space size (cohorts per block)")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=0.0,
        help="fail unless the vector trial is at least this much faster",
    )
    args = parser.parse_args(argv)
    if args.events < 1 or args.repeats < 1 or args.rate <= 0 or args.keys < 1:
        parser.error("--events/--repeats/--rate/--keys must be positive")

    spec = bench_spec(args.events, args.rate, args.keys)
    print(
        f"== engine hot path @ {args.events:,} events "
        f"({spec.duration_s:g}s sim, {args.keys} keys) =="
    )

    scalar_t, scalar_result = run_mode(spec, scalar=True, repeats=args.repeats)
    vector_t, vector_result = run_mode(spec, scalar=False, repeats=args.repeats)
    speedup = scalar_t / vector_t if vector_t > 0 else float("inf")
    print(f"trial wall time   scalar {scalar_t * 1e3:9.1f} ms   "
          f"vector {vector_t * 1e3:9.1f} ms   speedup {speedup:6.1f}x")
    for result, label in ((scalar_result, "scalar"), (vector_result, "vector")):
        if result.failed:
            print(f"TRIAL FAILED ({label}): {result.failure}")
            return 1

    failures = (
        compare_tables(scalar_result, vector_result)
        + compare_summaries(scalar_result, vector_result)
        + compare_diagnostics(scalar_result, vector_result)
    )
    if failures:
        print("IDENTITY CHECK FAILED:")
        for f in failures[:40]:
            print(f"  - {f}")
        if len(failures) > 40:
            print(f"  ... and {len(failures) - 40} more")
        return 1
    n_outputs = len(scalar_result.collector.outputs)
    print(f"numeric identity: OK over {n_outputs:,} sink outputs, "
          f"{len(scalar_result.diagnostics)} diagnostics "
          f"(tolerance {IDENTITY_TOL:g})")

    if args.assert_speedup > 0 and speedup < args.assert_speedup:
        print(
            f"SPEEDUP CHECK FAILED: {speedup:.1f}x "
            f"< required {args.assert_speedup:.1f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
