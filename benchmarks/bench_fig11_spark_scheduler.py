"""Figure 11: Spark's scheduler delay vs throughput coupling.

The paper shows that Spark initially over-ingests, the scheduler delay
spikes, backpressure fires and the input rate is limited; thereafter
every ingest spike echoes in the scheduler delay.  We run Spark at its
sustainable rate and correlate the per-job scheduler delay with the
driver-side ingest series.
"""

import numpy as np
import pytest

from benchmarks.conftest import agg_spec, emit
from repro.core.experiment import run_experiment
from repro.core.metrics import TimeSeries
from repro.core.report import series_table

DURATION_S = 240.0


@pytest.mark.benchmark(group="fig11")
def test_fig11_spark_scheduler_delay(benchmark, agg_sustainable_rates):
    def measure():
        rate = agg_sustainable_rates[("spark", 4)]
        return run_experiment(
            agg_spec("spark", 4, profile=rate, duration_s=DURATION_S)
        )

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert not result.failed, result.failure

    # Rebuild the scheduler-delay series from the engine job log.
    job_log = result.diagnostics.get("jobs_run")
    assert job_log and job_log > 10
    # The diagnostics dict carries counters; the raw log is on the
    # engine, which the driver released -- so re-run with direct access.
    from repro.core.driver import BenchmarkDriver  # noqa: F401  (doc pointer)
    from repro.core.experiment import ExperimentSpec
    from repro.engines.spark import SparkEngine
    import repro.core.experiment as experiment_mod

    captured = {}
    original = SparkEngine.diagnostics

    def capturing_diagnostics(self):
        captured["job_log"] = list(self.job_log)
        return original(self)

    SparkEngine.diagnostics = capturing_diagnostics
    try:
        rate = agg_sustainable_rates[("spark", 4)]
        result = experiment_mod.run_experiment(
            agg_spec("spark", 4, profile=rate, duration_s=DURATION_S)
        )
    finally:
        SparkEngine.diagnostics = original

    sched = TimeSeries()
    for job in captured["job_log"]:
        sched.append(job["started_at"], job["sched_delay"])
    ingest = result.throughput.ingest_series
    emit(
        "fig11_spark_scheduler",
        series_table(
            "Figure 11: Spark scheduler delay (s) vs ingest rate (ev/s)",
            {"sched delay": sched, "ingest rate": ingest},
            bin_s=10.0,
        ),
    )

    # Initial over-ingestion: the first measured pull rates exceed the
    # post-warmup steady state (the controller then reins them in).
    early = max(ingest.values[:10])
    steady = np.mean(ingest.window(result.warmup_s).values)
    assert early > steady * 1.04
    # Scheduler delays exist and are batch-scale, not zero.
    assert sched.mean() > 0.05
    assert len(sched) > 20
