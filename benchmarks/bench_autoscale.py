"""Elasticity benchmark: autoscaled cost and time-to-resustain gates.

SProBench-style question on top of the paper's fixed-cluster trials:
hit a one-worker cluster with a flash crowd at twice its sustained
capacity and let the threshold policy scale it out.  The run *gates*
(non-zero exit) on the two claims the autoscaling subsystem makes:

1. **Bounded resustain**: every scale-out event re-enters the sustain
   band, and the slowest event's ``time_to_resustain_s`` stays inside
   an explicit bound (detect + provision + migrate + catch-up).
2. **Elasticity pays**: the autoscaled bill (``cost_node_seconds``,
   integrated over billed nodes) is strictly below a fixed cluster
   provisioned for the peak (``max_workers`` for the whole trial) --
   otherwise the whole subsystem is pointless.

Both invariant families (conservation ledgers, delivery guarantees)
are re-checked on every trial via the chaos checker.

Run directly (not collected by the tier-1 pytest run)::

    PYTHONPATH=src python benchmarks/bench_autoscale.py          # 5 engines
    PYTHONPATH=src python benchmarks/bench_autoscale.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.autoscale.metrics import RescaleMetrics
from repro.autoscale.policy import AutoscaleSpec
from repro.autoscale.scorecard import single_worker_capacity
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.recovery.chaos import ChaosConfig, check_invariants
import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.workloads.profiles import FlashCrowdRate

MAX_WORKERS = 6

#: The gate: the slowest resustain across all engines must fit here.
#: Cold boot (15 s) + warm-up + migration + catch-up under a 2x burst;
#: measured values at seed 0 sit near 30-47 s per engine.
RESUSTAIN_BOUND_S = 75.0


def autoscale_spec(engine: str, *, duration: float, seed: int) -> ExperimentSpec:
    capacity = single_worker_capacity(engine)
    return ExperimentSpec(
        engine=engine,
        workers=1,
        profile=FlashCrowdRate(
            base=0.4 * capacity,
            spike=2.0 * capacity,
            horizon_s=duration / 2.0,
            spikes=1,
            spike_duration_s=25.0,
            seed=seed,
        ),
        duration_s=duration,
        seed=seed,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        autoscale=AutoscaleSpec(
            policy="threshold",
            min_workers=1,
            max_workers=MAX_WORKERS,
            cooldown_s=12.0,
        ),
    )


def fmt_s(value: float) -> str:
    return "never" if math.isnan(value) else f"{value:.1f}s"


def worst_resustain(events: list) -> float:
    """Slowest settled scale-out; NaN if the *final* scale-out never
    settled.  Intermediate steps of a multi-step ramp are superseded by
    the next decision before their settle window opens (the metrology
    truncates their scan there), so only the last one is a gate."""
    outs = [m for m in events if m.kind == "scale-out"]
    if outs and not outs[-1].resustained:
        return float("nan")
    settled = [m.time_to_resustain_s for m in outs if m.resustained]
    return max(settled, default=0.0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: flink only, short trial",
    )
    parser.add_argument("--duration", type=float, default=180.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.duration <= 0:
        parser.error("--duration must be positive")

    engines = (
        ("flink",)
        if args.quick
        else ("flink", "storm", "spark", "heron", "samza")
    )
    duration = min(args.duration, 90.0) if args.quick else args.duration

    failures = []
    lines = [
        f"{'engine':<8} {'out':>4} {'in':>4} {'ttr-worst':>10} "
        f"{'cost(ns)':>9} {'fixed(ns)':>9} {'saved':>6}",
        "-" * 56,
    ]
    for engine in engines:
        result = run_experiment(
            autoscale_spec(engine, duration=duration, seed=args.seed)
        )
        label = f"autoscale/{engine}"
        if result.failed:
            failures.append(f"{label}: trial failed: {result.failure}")
            continue
        violations = check_invariants(
            result, ChaosConfig(latency_bound_s=20.0), label
        )
        failures.extend(violations)
        events: list[RescaleMetrics] = result.autoscale or []
        outs = sum(1 for m in events if m.kind == "scale-out")
        ins = len(events) - outs
        if outs == 0:
            failures.append(f"{label}: the burst never forced a scale-out")
        worst = worst_resustain(events)
        if math.isnan(worst):
            failures.append(f"{label}: a scale-out never re-sustained")
        elif worst > RESUSTAIN_BOUND_S:
            failures.append(
                f"{label}: worst resustain {worst:.1f}s exceeds the "
                f"{RESUSTAIN_BOUND_S:.0f}s bound"
            )
        cost = result.diagnostics["autoscale.cost_node_seconds"]
        fixed = MAX_WORKERS * duration
        if not cost < fixed:
            failures.append(
                f"{label}: autoscaled bill {cost:.0f} node-seconds is not "
                f"below the fixed peak-provisioned {fixed:.0f}"
            )
        lines.append(
            f"{engine:<8} {outs:>4} {ins:>4} {fmt_s(worst):>10} "
            f"{cost:>9.0f} {fixed:>9.0f} {1.0 - cost / fixed:>6.1%}"
        )

    lines.append("-" * 56)
    status = "PASS" if not failures else "FAIL"
    lines.append(
        f"{status}: {len(engines)} engines, bound {RESUSTAIN_BOUND_S:.0f}s, "
        f"seed {args.seed}"
    )
    lines.extend(f"  ! {failure}" for failure in failures)
    print("\n".join(lines))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
