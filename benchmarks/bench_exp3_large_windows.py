"""Experiment 3: queries with a large (60s, 60s) window.

Reproduces the three findings:

1. Spark with a 4 s batch loses ~2x throughput on the large window and
   its latency blows up (~10x) at the old rate, because the windowed
   state is cached/recomputed per batch;
2. implementing an Inverse Reduce Function restores the throughput;
3. Storm hits memory exceptions on the large window unless a
   user-supplied spill-to-disk structure is used; Flink is unaffected
   (on-the-fly aggregation).
"""

import pytest

from benchmarks.conftest import agg_spec, emit
from repro.core.experiment import run_experiment
from repro.core.sustainable import find_sustainable_throughput
from repro.engines.spark import SparkConfig
from repro.engines.storm import StormConfig
from repro.workloads.queries import LARGE_WINDOW, WindowedAggregationQuery

SMALL_RATE_SPARK_2NODE = 0.38e6  # Spark's (8s,4s) Table I rate


def large_window_spec(engine, workers, **overrides):
    return agg_spec(
        engine,
        workers,
        query=WindowedAggregationQuery(window=LARGE_WINDOW),
        **overrides,
    )


@pytest.mark.benchmark(group="exp3")
def test_exp3_large_windows(benchmark):
    def measure():
        out = {}
        # (1) Spark at its small-window rate with the default (caching)
        # window implementation on the big window: unsustainable.
        overload = run_experiment(
            large_window_spec(
                "spark", 2, profile=SMALL_RATE_SPARK_2NODE, duration_s=240.0
            )
        )
        out["spark@small-window-rate"] = overload
        # Its sustainable rate with caching:
        cached = find_sustainable_throughput(
            large_window_spec("spark", 2),
            high_rate=SMALL_RATE_SPARK_2NODE * 1.1,
            rel_tol=0.07,
            max_trials=8,
        )
        out["spark cached rate"] = cached.sustainable_rate
        # (2) With the inverse-reduce function:
        inverse_cfg = SparkConfig(inverse_reduce=True)
        inverse = find_sustainable_throughput(
            large_window_spec("spark", 2, engine_config=inverse_cfg),
            high_rate=SMALL_RATE_SPARK_2NODE * 1.2,
            rel_tol=0.07,
            max_trials=8,
        )
        out["spark inverse-reduce rate"] = inverse.sustainable_rate
        # (3) Storm OOMs without spillable state, survives with it.
        out["storm default"] = run_experiment(
            large_window_spec("storm", 2, profile=0.4e6, duration_s=200.0)
        )
        out["storm advanced"] = run_experiment(
            large_window_spec(
                "storm",
                2,
                profile=0.15e6,
                duration_s=200.0,
                engine_config=StormConfig(advanced_state=True),
            )
        )
        # Flink is unaffected by the big window.
        out["flink"] = run_experiment(
            large_window_spec("flink", 2, profile=1.1e6, duration_s=200.0)
        )
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    overload = out["spark@small-window-rate"]
    ratio = out["spark cached rate"] / SMALL_RATE_SPARK_2NODE
    if overload.failed:
        overload_desc = f"FAILED ({overload.failure})"
    else:
        overload_desc = (
            f"avg latency {overload.event_latency.mean:.1f} s "
            "(vs ~3.6 s on the small window; paper reports ~10x)"
        )
    lines = [
        "Experiment 3: (60s, 60s) window",
        f"Spark @ 0.38 M/s (its (8s,4s) rate), 4 s batch, caching: "
        f"{overload_desc}",
        f"Spark sustainable rate with caching: "
        f"{out['spark cached rate'] / 1e6:.2f} M/s "
        f"({ratio:.2f}x of small-window rate; paper ~0.5x)",
        f"Spark sustainable rate with inverse-reduce: "
        f"{out['spark inverse-reduce rate'] / 1e6:.2f} M/s (paper: restored)",
        f"Storm default state: "
        + (
            f"FAILED with {out['storm default'].failure}"
            if out["storm default"].failed
            else "unexpectedly survived"
        ),
        f"Storm with spillable state: "
        + ("survived" if not out["storm advanced"].failed else "failed"),
        f"Flink @ 1.1 M/s: "
        + ("sustained" if not out["flink"].failed else "failed"),
    ]
    emit("exp3_large_windows", "\n".join(lines))

    # Spark at the old rate: the run collapses -- either the latency
    # blows up by several x or the queues overflow outright.
    assert overload.failed or overload.event_latency.mean > 3 * 3.6
    # Cached throughput roughly halves (paper: "decreases by 2 times").
    assert 0.3 < ratio < 0.75, ratio
    # Inverse reduce restores (close to) the small-window rate.
    assert out["spark inverse-reduce rate"] > 0.85 * SMALL_RATE_SPARK_2NODE
    # Storm: OOM without spill, fine with it; Flink unaffected.
    assert out["storm default"].failed
    assert "heap budget" in out["storm default"].failure
    assert not out["storm advanced"].failed
    assert not out["flink"].failed
