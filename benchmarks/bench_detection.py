"""Detection-quality gate: phi-accrual must beat the fixed timeout.

Gray failures are where detector choice matters: a flapping node keeps
resetting a fixed timeout just before it fires, and a fail-slow ramp
stretches heartbeat gaps so gradually that a timeout tuned for crashes
fires late or never.  An adaptive accrual detector (Hayashibara et
al.'s phi) models the inter-arrival history instead, so it should
convict both families *earlier* without buying that speed with false
positives.  This run gates (non-zero exit) on exactly that claim, at an
equal false-positive budget:

1. **Equal FP budget** -- on every gray scenario, phi raises no more
   false positives than the timeout detector, and *neither* raises any
   on a calm (fault-free) trial.
2. **Strictly earlier detection** -- phi's mean detection latency over
   the gray scenarios is strictly lower than the timeout detector's.
   An undetected episode (false negative) is charged a penalty latency
   of ``episode duration + detection timeout`` -- the earliest a
   detector that missed the whole window could possibly have acted --
   so "never fired" can win no latency contest.
3. **Cascade sanity** -- no detector chains suspect migrations deeper
   than the cluster size on these single-fault scenarios.

The quorum detector rides along for the report (its value is asymmetric
-partition splits, not latency) but only phi vs timeout gates.

Run directly (not collected by the tier-1 pytest run)::

    PYTHONPATH=src python benchmarks/bench_detection.py          # full grid
    PYTHONPATH=src python benchmarks/bench_detection.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.detect.plane import detector_spec
from repro.faults.checkpoint import CheckpointSpec
from repro.faults.schedule import (
    DegradingNode,
    FaultEvent,
    FaultSchedule,
    FlappingNode,
)
from repro.recovery.reschedule import MODE_STANDBY, ReschedulePolicy
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

ENGINE = "flink"
DETECTORS = ("timeout", "phi", "quorum")
GATED = ("timeout", "phi")


def _scenarios(quick: bool) -> List[Tuple[str, Optional[FaultEvent]]]:
    """(name, fault) pairs; the calm scenario is the FP control."""
    scenarios: List[Tuple[str, Optional[FaultEvent]]] = [
        ("flap", FlappingNode(at_s=12.0, duration_s=16.0, node=1,
                              period_s=6.0, duty=0.5, seed=7)),
        ("degrade-0.2", DegradingNode(at_s=12.0, duration_s=14.0, node=1,
                                      floor_factor=0.2)),
    ]
    if not quick:
        scenarios += [
            ("flap-fast", FlappingNode(at_s=12.0, duration_s=16.0, node=1,
                                       period_s=4.0, duty=0.4, seed=3)),
            ("degrade-0.3", DegradingNode(at_s=12.0, duration_s=14.0,
                                          node=1, floor_factor=0.3)),
        ]
    scenarios.append(("calm", None))
    return scenarios


def _run(detector: str, fault: Optional[FaultEvent], seed: int):
    spec = ExperimentSpec(
        engine=ENGINE,
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=20_000.0,
        duration_s=40.0,
        seed=seed,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        faults=FaultSchedule((fault,)) if fault is not None else None,
        standby=1,
        reschedule=ReschedulePolicy(standby_nodes=1, mode=MODE_STANDBY),
        detector=detector_spec(detector),
    )
    return run_experiment(spec)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: one scenario per gray family",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    penalty_timeout = CheckpointSpec().detection_timeout_s
    scenarios = _scenarios(args.quick)
    failures: List[str] = []
    # detector -> (penalised latencies over gray scenarios, total FPs)
    latencies = {d: [] for d in DETECTORS}
    fp_total = {d: 0 for d in DETECTORS}

    lines = [
        f"{'scenario':<12} {'detector':<8} {'tp':>3} {'fp':>3} {'fn':>3} "
        f"{'latency(s)':>11} {'cascade':>7}",
        "-" * 54,
    ]
    for name, fault in scenarios:
        for detector in DETECTORS:
            result = _run(detector, fault, args.seed)
            det = result.detection
            if result.failed:
                failures.append(f"{name}/{detector}: trial failed")
                continue
            per_episode = list(det.detection_latencies_s)
            if fault is not None:
                per_episode += [fault.duration_s + penalty_timeout] * (
                    det.false_negatives
                )
                latencies[detector].extend(per_episode)
                fp_total[detector] += det.false_positives
            mean = (
                sum(per_episode) / len(per_episode) if per_episode
                else float("nan")
            )
            lines.append(
                f"{name:<12} {detector:<8} {det.true_positives:>3} "
                f"{det.false_positives:>3} {det.false_negatives:>3} "
                f"{mean:>11.2f} {det.cascade_depth_max:>7}"
            )
            if fault is None and det.false_positives:
                failures.append(
                    f"calm/{detector}: {det.false_positives} false "
                    "positive(s) with no fault injected"
                )
            if det.cascade_depth_max > 2:
                failures.append(
                    f"{name}/{detector}: cascade depth "
                    f"{det.cascade_depth_max} exceeds the cluster size"
                )

    if fp_total["phi"] > fp_total["timeout"]:
        failures.append(
            f"phi spent a larger FP budget than timeout "
            f"({fp_total['phi']} > {fp_total['timeout']})"
        )
    for detector in GATED:
        if not latencies[detector]:
            failures.append(f"{detector}: no gray episodes scored")
    if all(latencies[d] for d in GATED):
        means = {
            d: sum(latencies[d]) / len(latencies[d]) for d in GATED
        }
        if not means["phi"] < means["timeout"]:
            failures.append(
                f"phi mean detection latency {means['phi']:.2f}s is not "
                f"strictly below timeout's {means['timeout']:.2f}s "
                "(FN-penalised, equal FP budget)"
            )
        else:
            lines.append(
                f"gate: phi {means['phi']:.2f}s < timeout "
                f"{means['timeout']:.2f}s mean detection latency "
                f"(FP budget {fp_total['phi']} <= {fp_total['timeout']})"
            )

    lines.append("-" * 54)
    status = "PASS" if not failures else "FAIL"
    lines.append(
        f"{status}: {len(scenarios)} scenarios x {len(DETECTORS)} "
        f"detectors, seed {args.seed}"
    )
    lines.extend(f"  ! {failure}" for failure in failures)
    print("\n".join(lines))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
