"""Ablations of the paper's design decisions (DESIGN.md Section 5).

Each ablation removes or weakens one methodological choice and shows
the distortion the paper's design avoids:

1. **Broker mediator** (Section III-A): inserting a Kafka-style broker
   between generators and SUT caps measurable throughput at the broker,
   not the SUT, and pollutes latency -- the Yahoo-benchmark bottleneck.
2. **Coordinated omission** (Section IV-A): measuring only
   processing-time latency under overload wildly underestimates the
   user-visible latency.
3. **Windowed event-time definition** (Definition 3): anchoring a
   windowed output at anything other than the max contributing
   event-time (e.g. the window start) pollutes latency with
   window-buffering time.
4. **Sustainability tolerance**: the sustainable rate is robust to the
   exact queue-growth tolerance (2% vs 5%), i.e. the metric is
   well-conditioned.
5. **Spark batch interval** (Section VI-A tuning): smaller batches cut
   latency but cannot sustain the same load; larger batches sustain it
   with worse latency -- the trade-off motivating the paper's 4 s pick.
"""

import pytest

from benchmarks.conftest import agg_spec, emit
from repro.core.broker import BrokerSpec
from repro.core.experiment import run_experiment
from repro.core.generator import GeneratorConfig
from repro.core.latency import EVENT_TIME, PROCESSING_TIME
from repro.core.sustainable import (
    SustainabilityCriteria,
    find_sustainable_throughput,
)
from repro.engines.spark import SparkConfig


@pytest.mark.benchmark(group="ablations")
def test_ablation_broker_mediator(benchmark):
    """Ablation 1: the mediator becomes the bottleneck."""

    def measure():
        direct = run_experiment(agg_spec("flink", 2, profile=0.9e6))
        brokered = run_experiment(
            agg_spec("flink", 2, profile=0.9e6, broker=BrokerSpec())
        )
        return direct, brokered

    direct, brokered = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "ablation_broker",
        "Ablation: message broker between generator and SUT (Flink 2-node, "
        "0.9 M/s offered)\n"
        f"  direct   : ingest {direct.mean_ingest_rate / 1e6:.2f} M/s, "
        f"event latency avg {direct.event_latency.mean:.2f} s\n"
        f"  brokered : ingest {brokered.mean_ingest_rate / 1e6:.2f} M/s, "
        f"event latency avg {brokered.event_latency.mean:.2f} s\n"
        "  -> the broker (0.7 M/s forward capacity) caps the measurement and "
        "its backlog pollutes latency, as in the Yahoo streaming benchmark.",
    )
    assert direct.mean_ingest_rate > 0.85e6
    assert brokered.mean_ingest_rate < 0.75e6
    assert brokered.event_latency.mean > 5 * direct.event_latency.mean


@pytest.mark.benchmark(group="ablations")
def test_ablation_coordinated_omission(benchmark):
    """Ablation 2: processing-time-only measurement under overload."""

    def measure():
        return run_experiment(
            agg_spec(
                "spark",
                2,
                profile=0.55e6,
                duration_s=200.0,
                generator=GeneratorConfig(
                    instances=2, queue_capacity_seconds=1000.0
                ),
            )
        )

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    under = result.event_latency.mean / max(
        result.processing_latency.mean, 1e-9
    )
    emit(
        "ablation_coordinated_omission",
        "Ablation: coordinated omission (Spark 2-node, 1.4x overload)\n"
        f"  processing-time latency avg : {result.processing_latency.mean:.2f} s\n"
        f"  event-time latency avg      : {result.event_latency.mean:.2f} s\n"
        f"  -> measuring inside the SUT underestimates latency {under:.1f}x.",
    )
    assert under > 2.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_windowed_latency_definition(benchmark):
    """Ablation 3: anchor windowed outputs at the window start instead."""

    def measure():
        result = run_experiment(
            agg_spec(
                "flink", 2, profile=0.4e6, duration_s=120.0, keep_outputs=True
            )
        )
        return result, result.collector.outputs

    result, outputs = benchmark.pedantic(measure, rounds=1, iterations=1)
    window_size = 8.0
    post = [o for o in outputs if o.emit_time >= result.warmup_s]
    definition3 = sum(o.event_time_latency for o in post) / len(post)
    naive = sum(
        o.emit_time - (o.window_end - window_size) for o in post
    ) / len(post)
    emit(
        "ablation_latency_definition",
        "Ablation: windowed event-time anchor (Flink 2-node, 0.4 M/s)\n"
        f"  Definition 3 (max contributing event-time): avg "
        f"{definition3:.2f} s\n"
        f"  naive anchor (window start -> includes buffering): avg "
        f"{naive:.2f} s\n"
        "  -> without Definition 3, window-buffering time (up to the full "
        "window size) pollutes the metric.",
    )
    assert naive > definition3 + 0.5 * window_size


@pytest.mark.benchmark(group="ablations")
def test_ablation_sustainability_tolerance(benchmark):
    """Ablation 4: the found rate is stable across tolerance settings."""

    def measure():
        rates = {}
        for tol in (0.02, 0.05):
            criteria = SustainabilityCriteria(max_occupancy_slope_frac=tol)
            search = find_sustainable_throughput(
                agg_spec("storm", 2),
                high_rate=0.8e6,
                rel_tol=0.05,
                criteria=criteria,
                max_trials=8,
            )
            rates[tol] = search.sustainable_rate
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "ablation_sustainability_tolerance",
        "Ablation: queue-growth tolerance of the sustainability test "
        "(Storm 2-node)\n"
        + "\n".join(
            f"  tolerance {tol:.0%}: sustainable {rate / 1e6:.2f} M/s"
            for tol, rate in sorted(rates.items())
        )
        + "\n  -> the metric is well-conditioned in the tolerance.",
    )
    lo, hi = min(rates.values()), max(rates.values())
    assert hi / max(lo, 1.0) < 1.25


@pytest.mark.benchmark(group="ablations")
def test_ablation_spark_batch_interval(benchmark):
    """Ablation 5: the batch-size throughput/latency trade-off."""

    def measure():
        out = {}
        for batch_s in (2.0, 4.0, 8.0):
            cfg = SparkConfig(batch_interval_s=batch_s)
            search = find_sustainable_throughput(
                agg_spec("spark", 2, engine_config=cfg),
                high_rate=0.6e6,
                rel_tol=0.06,
                max_trials=7,
            )
            # Latency is reported just below the edge (92% of the found
            # rate): at the exact maximum the residual queue drift
            # dominates and masks the batch-interval effect.
            probe = run_experiment(
                agg_spec(
                    "spark",
                    2,
                    profile=search.sustainable_rate * 0.92,
                    engine_config=cfg,
                )
            )
            out[batch_s] = (search.sustainable_rate, probe.event_latency.mean)
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "ablation_spark_batch_interval",
        "Ablation: Spark batch interval (2-node aggregation)\n"
        + "\n".join(
            f"  batch {batch_s:>3.0f} s: sustainable "
            f"{rate / 1e6:.2f} M/s, avg latency {lat:.2f} s"
            for batch_s, (rate, lat) in sorted(out.items())
        )
        + "\n  -> 'The smaller the batch size, the lower the latency and "
        "throughput.'",
    )
    # Latency grows with batch size; throughput does not shrink.
    assert out[2.0][1] < out[4.0][1] < out[8.0][1]
    assert out[8.0][0] >= out[4.0][0] * 0.9
    assert out[4.0][0] >= out[2.0][0] * 0.95
