"""Experiment 4: data skew (all events carry a single key).

Reproduces:

- Flink and Storm stop scaling: the keyed stage runs on one slot, so
  the sustainable rate is flat across cluster sizes (~0.48 M/s for
  Flink, ~0.2 M/s for Storm);
- Spark's tree-aggregate spreads the hot key: ~0.53 M/s at 4 nodes and
  still scaling -- on 4+ nodes Spark *beats* both other engines under
  skew, the paper's headline for this experiment;
- skewed joins: Flink becomes unresponsive; Spark survives but with
  very high latencies.
"""

import pytest

from benchmarks.conftest import agg_spec, emit, join_spec
from repro.analysis.paper_values import (
    PAPER_EXP4_FLINK_SKEW_THROUGHPUT,
    PAPER_EXP4_SPARK_SKEW_THROUGHPUT_4NODE,
    PAPER_EXP4_STORM_SKEW_THROUGHPUT,
)
from repro.analysis.stats import within_factor
from repro.core.experiment import run_experiment
from repro.core.report import throughput_table
from repro.core.sustainable import find_sustainable_throughput
from repro.workloads.keys import SingleKey
from repro.workloads.queries import (
    PAPER_DEFAULT_WINDOW,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)

SKEWED_AGG = WindowedAggregationQuery(
    window=PAPER_DEFAULT_WINDOW, keys=SingleKey()
)
SKEWED_JOIN = WindowedJoinQuery(window=PAPER_DEFAULT_WINDOW, keys=SingleKey())


@pytest.mark.benchmark(group="exp4")
def test_exp4_data_skew(benchmark):
    def measure():
        rates = {}
        for engine in ("storm", "spark", "flink"):
            for workers in (2, 4):
                search = find_sustainable_throughput(
                    agg_spec(engine, workers, query=SKEWED_AGG),
                    high_rate=0.9e6,
                    rel_tol=0.06,
                    max_trials=8,
                )
                rates[(engine, workers)] = search.sustainable_rate
        # Skewed join behaviour:
        flink_join = run_experiment(
            join_spec("flink", 4, query=SKEWED_JOIN, profile=0.5e6, duration_s=150.0)
        )
        spark_join = run_experiment(
            join_spec("spark", 4, query=SKEWED_JOIN, profile=0.33e6, duration_s=150.0)
        )
        return rates, flink_join, spark_join

    rates, flink_join, spark_join = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    table = throughput_table(
        "Experiment 4: sustainable throughput under single-key skew "
        "(aggregation)",
        measured=rates,
        paper={
            ("flink", 2): PAPER_EXP4_FLINK_SKEW_THROUGHPUT,
            ("flink", 4): PAPER_EXP4_FLINK_SKEW_THROUGHPUT,
            ("storm", 2): PAPER_EXP4_STORM_SKEW_THROUGHPUT,
            ("storm", 4): PAPER_EXP4_STORM_SKEW_THROUGHPUT,
            ("spark", 4): PAPER_EXP4_SPARK_SKEW_THROUGHPUT_4NODE,
        },
        workers=(2, 4),
    )
    join_lines = [
        "",
        "Skewed join: "
        f"Flink {'UNRESPONSIVE (' + flink_join.failure + ')' if flink_join.failed else 'survived'}; "
        f"Spark survived={not spark_join.failed} with avg event latency "
        f"{spark_join.event_latency.mean:.1f} s",
    ]
    emit("exp4_data_skew", table + "\n".join(join_lines))

    # Flink and Storm do not scale under skew (flat 2- vs 4-node).
    for engine, paper_rate in (
        ("flink", PAPER_EXP4_FLINK_SKEW_THROUGHPUT),
        ("storm", PAPER_EXP4_STORM_SKEW_THROUGHPUT),
    ):
        assert rates[(engine, 4)] < rates[(engine, 2)] * 1.15
        assert within_factor(rates[(engine, 2)], paper_rate, 1.5)
    # Spark scales and beats both at 4 nodes.
    assert rates[("spark", 4)] > rates[("spark", 2)]
    assert rates[("spark", 4)] > rates[("flink", 4)]
    assert rates[("spark", 4)] > rates[("storm", 4)]
    assert within_factor(
        rates[("spark", 4)], PAPER_EXP4_SPARK_SKEW_THROUGHPUT_4NODE, 1.5
    )
    # Join: Flink unresponsive; Spark survives, at batch-scale latency.
    assert flink_join.failed and "unresponsive" in flink_join.failure
    assert not spark_join.failed
    assert spark_join.event_latency.mean > 3.5
