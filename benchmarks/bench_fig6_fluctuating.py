"""Figure 6 / Experiment 5: fluctuating workloads.

The offered rate steps 0.84 M/s -> 0.28 M/s -> 0.84 M/s.  Panels:
Storm/Spark/Flink on the aggregation query and Spark/Flink on the join
(Storm has no viable join).  We run on 8-node deployments, where
0.84 M/s sits just below the Storm/Spark sustainable maxima -- the
high phases press the engines without drowning them, and the step back
up to 0.84 M/s is the surge the paper studies.

Expected shape (paper): Storm is the most susceptible to the spikes;
Spark and Flink are competitive on the aggregation; on the join, Flink
handles the spikes better than Spark.
"""

import numpy as np
import pytest

from benchmarks.conftest import GENERATOR, agg_spec, emit, join_spec
from repro.analysis.ascii_plots import render_panels
from repro.core.experiment import run_experiment
from repro.workloads.profiles import fig6_profile

DURATION_S = 300.0


def spike_severity(result):
    """Excess latency during/after the recovery spike vs. the calm phase."""
    series = result.collector.binned_series(bin_s=5.0, start_time=result.warmup_s)
    values = np.asarray(series.values)
    if values.size == 0:
        return float("inf")
    calm = np.percentile(values, 20)
    return float(values.max() - calm)


@pytest.mark.benchmark(group="fig6")
def test_fig6_fluctuating_workloads(benchmark):
    profile = fig6_profile(DURATION_S)

    def measure():
        results = {}
        for engine in ("storm", "spark", "flink"):
            results[f"{engine} agg"] = run_experiment(
                agg_spec(engine, 8, profile=profile, duration_s=DURATION_S)
            )
        for engine in ("spark", "flink"):
            results[f"{engine} join"] = run_experiment(
                join_spec(engine, 8, profile=profile, duration_s=DURATION_S)
            )
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    panels = {
        name: r.collector.binned_series(bin_s=5.0, start_time=r.warmup_s)
        for name, r in results.items()
    }
    severities = {name: spike_severity(r) for name, r in results.items()}
    text = [
        "Figure 6: event-time latency under fluctuating load "
        "(0.84 -> 0.28 -> 0.84 M/s)",
        render_panels(panels, unit="s"),
        "",
        "spike severity (max - calm-phase latency, seconds):",
    ]
    text += [f"  {name:<12} {sev:6.2f}" for name, sev in sorted(severities.items())]
    emit("fig6_fluctuating", "\n".join(text))

    for name, result in results.items():
        assert not result.failed, (name, result.failure)
    # Storm is the most susceptible system on the aggregation query.
    assert severities["storm agg"] > severities["spark agg"]
    assert severities["storm agg"] > severities["flink agg"]
    # For joins, Flink handles the spikes better than Spark.
    assert severities["flink join"] < severities["spark join"]
