"""Figure 5: windowed-join latency distributions over time.

12 panels: {Spark, Flink} x {2, 4, 8 nodes} x {max, 90%}.

Expected shape (paper): substantial fluctuations for Spark (in contrast
to its aggregation panels), higher Flink latencies than in Figure 4
(joins evaluate in bulk at window close), spikes reduced at 90% load --
the panels where the paper points out visible backpressure.
"""

import numpy as np
import pytest

from benchmarks.conftest import MEASURE_DURATION_S, emit, join_spec
from repro.analysis.ascii_plots import render_panels
from repro.core.experiment import run_experiment


@pytest.mark.benchmark(group="fig5")
def test_fig5_join_latency_timeseries(benchmark, join_sustainable_rates):
    def measure():
        panels = {}
        for (engine, workers), rate in sorted(join_sustainable_rates.items()):
            for label, factor in (("max", 1.0), ("90%", 0.9)):
                result = run_experiment(
                    join_spec(
                        engine,
                        workers,
                        profile=rate * factor,
                        duration_s=MEASURE_DURATION_S,
                    )
                )
                panels[f"{engine} {workers}-node {label}"] = (
                    result.collector.binned_series(
                        bin_s=5.0, start_time=result.warmup_s
                    )
                )
        return panels

    panels = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "fig5_join_latency_timeseries",
        "Figure 5: join event-time latency over time (binned 5 s)\n"
        + render_panels(panels, unit="s"),
    )

    # Join latencies exceed the aggregation scale for Flink: means in
    # seconds, not fractions of one.
    assert np.mean(panels["flink 2-node max"].values) > 1.0
    # 90% load reduces the worst spike for most panels.
    improved, total = 0, 0
    for key in [k for k in panels if k.endswith("max")]:
        partner = key.replace("max", "90%")
        total += 1
        if max(panels[partner].values) <= max(panels[key].values) * 1.1:
            improved += 1
    assert improved >= total * 2 // 3
