"""Figure 10: per-node network and CPU usage, aggregation, 4-node.

Each engine runs at its sustainable rate with the resource monitor on;
we report per-node CPU load and network MB per interval, as the paper's
top/bottom panel pairs do.

Expected shape (paper): Flink is network-bound, so its CPU load is the
lowest; "Storm and Spark ... use approximately 50% more CPU clock
cycles than Flink", while Flink moves the most bytes.
"""

import numpy as np
import pytest

from benchmarks.conftest import agg_spec, emit
from repro.core.experiment import run_experiment

DURATION_S = 200.0


@pytest.mark.benchmark(group="fig10")
def test_fig10_resource_usage(benchmark, agg_sustainable_rates):
    def measure():
        runs = {}
        for engine in ("storm", "spark", "flink"):
            rate = agg_sustainable_rates[(engine, 4)]
            runs[engine] = run_experiment(
                agg_spec(
                    engine,
                    4,
                    profile=rate,
                    duration_s=DURATION_S,
                    monitor_resources=True,
                )
            )
        return runs

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "Figure 10: resource usage, aggregation, 4-node, sustainable max",
        f"{'engine':<8} {'mean CPU %':>10} {'mean net MB/interval':>22}",
    ]
    cpu = {}
    net = {}
    for engine, run in runs.items():
        assert run.resources is not None
        samples = [s for s in run.resources.samples if s.time >= run.warmup_s]
        cpu[engine] = float(np.mean([s.cpu_load_pct for s in samples]))
        net[engine] = float(np.mean([s.network_mb for s in samples]))
        lines.append(f"{engine:<8} {cpu[engine]:>10.1f} {net[engine]:>22.1f}")
    lines.append("")
    lines.append("per-node CPU means (node0..node3):")
    for engine, run in runs.items():
        per_node = [
            np.mean(
                [
                    s.cpu_load_pct
                    for s in run.resources.node_series(node)
                    if s.time >= run.warmup_s
                ]
            )
            for node in range(4)
        ]
        lines.append(
            f"  {engine:<7} " + " ".join(f"{v:6.1f}" for v in per_node)
        )
    emit("fig10_resource_usage", "\n".join(lines))

    # Flink: least CPU, most network.
    assert cpu["flink"] < cpu["storm"]
    assert cpu["flink"] < cpu["spark"]
    assert net["flink"] > net["storm"]
    assert net["flink"] > net["spark"]
    # Storm/Spark burn substantially more cycles (paper: ~50% more).
    assert cpu["storm"] > 1.3 * cpu["flink"]
    assert cpu["spark"] > 1.3 * cpu["flink"]
