"""Figure 9: throughput (data pull rate) over time.

The aggregation query (8s, 4s) at sustainable rates; the series is the
driver-side measurement at the queues -- "As we separate the throughput
calculation clearly from the SUT, we retrieve this metric from the
driver."

Expected shape (paper): Storm pulls with strong fluctuations (immature
on/off backpressure), Spark fluctuates at job/batch cadence, Flink is
nearly flat ("Despite having a high data pull rate or throughput, Flink
has less fluctuations").
"""

import pytest

from benchmarks.conftest import MEASURE_DURATION_S, agg_spec, emit
from repro.analysis.ascii_plots import render_panels
from repro.analysis.stats import coefficient_of_variation
from repro.core.experiment import run_experiment


@pytest.mark.benchmark(group="fig9")
def test_fig9_throughput_graphs(benchmark, agg_sustainable_rates):
    def measure():
        runs = {}
        for engine in ("storm", "spark", "flink"):
            rate = agg_sustainable_rates[(engine, 4)]
            runs[engine] = run_experiment(
                agg_spec(engine, 4, profile=rate, duration_s=MEASURE_DURATION_S)
            )
        return runs

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    panels = {
        engine: r.throughput.ingest_series.window(r.warmup_s)
        for engine, r in runs.items()
    }
    cvs = {
        engine: coefficient_of_variation(series.values)
        for engine, series in panels.items()
    }
    text = [
        "Figure 9: ingest (pull) rate over time, aggregation, 4-node, "
        "sustainable max",
        render_panels(panels, unit=" ev/s"),
        "",
        "pull-rate fluctuation (coefficient of variation):",
    ]
    text += [f"  {engine:<7} {cv:6.3f}" for engine, cv in sorted(cvs.items())]
    emit("fig9_throughput_graphs", "\n".join(text))

    for engine, run in runs.items():
        assert not run.failed, (engine, run.failure)
    # Flink's pull rate is the smoothest; Storm's the most fluctuating.
    assert cvs["flink"] < cvs["spark"]
    assert cvs["flink"] < cvs["storm"]
    assert cvs["storm"] > 2 * cvs["flink"]
