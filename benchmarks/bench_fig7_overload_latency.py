"""Figure 7: event-time vs processing-time latency under overload.

Spark on 2 nodes, offered well above its sustainable rate.  The paper's
point -- the coordinated-omission argument -- is that the SUT's
backpressure stabilises *processing-time* latency while tuples pile up
in the driver queues, so *event-time* latency keeps climbing; anyone
measuring only processing time would wrongly conclude the system is
healthy.
"""

import pytest

from benchmarks.conftest import GENERATOR, agg_spec, emit
from repro.core.experiment import run_experiment
from repro.core.generator import GeneratorConfig
from repro.core.latency import EVENT_TIME, PROCESSING_TIME
from repro.core.report import series_table


@pytest.mark.benchmark(group="fig7")
def test_fig7_overload_event_vs_processing(benchmark):
    def measure():
        return run_experiment(
            agg_spec(
                "spark",
                2,
                profile=0.6e6,  # ~1.6x the 2-node Spark capacity
                duration_s=240.0,
                generator=GeneratorConfig(
                    instances=2, queue_capacity_seconds=1200.0
                ),
            )
        )

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    event = result.collector.binned_series(
        EVENT_TIME, bin_s=10.0, start_time=result.warmup_s
    )
    proc = result.collector.binned_series(
        PROCESSING_TIME, bin_s=10.0, start_time=result.warmup_s
    )
    emit(
        "fig7_overload_latency",
        series_table(
            "Figure 7: Spark under unsustainable load -- event vs "
            "processing-time latency (s)",
            {"event-time": event, "processing-time": proc},
        ),
    )

    event_slope = event.slope_per_s()
    proc_slope = proc.slope_per_s()
    # Event-time latency continuously increases ...
    assert event_slope > 0.2, event_slope
    # ... while processing-time latency stays (comparatively) stable.
    assert proc_slope < event_slope / 3
    assert result.event_latency.mean > 2 * result.processing_latency.mean
