"""Recovery benchmark: checkpoint-interval frontier monotonicity gates.

Vogel et al. (2024) frame fault-tolerance tuning as the trade-off this
repo's ``repro recover`` frontier measures: shorter checkpoint
intervals buy faster recovery at higher steady-state overhead.  The
run *gates* (non-zero exit) on the shape that trade-off must have for
the two exactly-once engines:

1. **Recovery never worsens with shorter intervals**: walking the
   interval grid upward, measured recovery time is non-decreasing
   (ties allowed -- binned latency quantizes small differences).  For
   Flink (checkpoint-restore) the replay window grows with the
   interval; for Spark (lineage recompute) the frontier is flat, which
   satisfies the gate and is itself the model's claim.
2. **Overhead is non-increasing with longer intervals**, and strictly
   positive for checkpoint-restore engines (the pause is real).
3. Every frontier trial recovers, and the chaos invariant families
   (ledgers, guarantees) hold -- re-checked per trial inside the
   harness.

Run directly (not collected by the tier-1 pytest run)::

    PYTHONPATH=src python benchmarks/bench_recovery_scorecard.py          # full grid
    PYTHONPATH=src python benchmarks/bench_recovery_scorecard.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import math
import sys

import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.faults.checkpoint import RecoverySemantics
from repro.engines import engine_class
from repro.recoverybench import RecoverConfig, run_recovery_bench

ENGINES = ("flink", "spark")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 3-point grid, short trials",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    intervals = (5.0, 10.0, 20.0) if args.quick else (2.5, 5.0, 10.0, 20.0, 40.0)
    duration = 45.0 if args.quick else 60.0
    config = RecoverConfig(
        seed=args.seed,
        engines=ENGINES,
        policies=("spread",),
        kinds=("restart",),
        intervals=intervals,
        duration_s=duration,
    )
    report = run_recovery_bench(config)

    failures = list(report.violations)
    lines = [
        f"{'engine':<8} {'interval':>8} {'recovery':>9} {'overhead':>9}",
        "-" * 40,
    ]
    for engine in ENGINES:
        points = report.frontiers[engine]
        checkpoint_restore = (
            engine_class(engine).recovery_semantics
            is RecoverySemantics.CHECKPOINT_RESTORE
        )
        for point in points:
            lines.append(
                f"{engine:<8} {point.interval_s:>8g} "
                f"{point.recovery_time_s:>9.2f} "
                f"{point.overhead_fraction:>9.4%}"
            )
            if not point.recovered:
                failures.append(
                    f"{engine}@{point.interval_s:g}s: fault never recovered"
                )
            if checkpoint_restore and point.overhead_fraction <= 0.0:
                failures.append(
                    f"{engine}@{point.interval_s:g}s: checkpoint-restore "
                    "engine measured zero steady-state overhead"
                )
        for prev, curr in zip(points, points[1:]):
            if (
                curr.recovery_time_s == curr.recovery_time_s
                and prev.recovery_time_s == prev.recovery_time_s
                and curr.recovery_time_s < prev.recovery_time_s - 1e-9
            ):
                failures.append(
                    f"{engine}: recovery time fell from "
                    f"{prev.recovery_time_s:.2f}s@{prev.interval_s:g}s to "
                    f"{curr.recovery_time_s:.2f}s@{curr.interval_s:g}s -- "
                    "a longer interval must never recover faster"
                )
            if curr.overhead_fraction > prev.overhead_fraction + 1e-12:
                failures.append(
                    f"{engine}: overhead rose from "
                    f"{prev.overhead_fraction:.4%}@{prev.interval_s:g}s to "
                    f"{curr.overhead_fraction:.4%}@{curr.interval_s:g}s -- "
                    "a longer interval must never checkpoint more"
                )

    lines.append("-" * 40)
    status = "PASS" if not failures else "FAIL"
    lines.append(
        f"{status}: {len(ENGINES)} engines x {len(intervals)} intervals, "
        f"seed {args.seed}"
    )
    lines.extend(f"  ! {failure}" for failure in failures)
    print("\n".join(lines))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
