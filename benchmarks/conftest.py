"""Shared fixtures for the benchmark harness.

Every table and figure of the paper has one bench module.  The
expensive artifact -- the sustainable-throughput searches behind Tables
I and III -- is computed once per session here and shared by the
latency benches (Tables II and IV run *at* the discovered rates, exactly
as the paper does).

Benchmarks run the full framework: generator fleet -> driver queues ->
simulated engine -> sink, with all measurement driver-side.  Results are
printed in paper layout (with the published values alongside) and also
written to ``benchmarks/out/`` for inspection.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Tuple

import pytest

from repro.core.experiment import ExperimentSpec
from repro.core.generator import GeneratorConfig
from repro.core.sustainable import (
    SustainabilityCriteria,
    sweep_sustainable_rates,
)
from repro.workloads.queries import (
    PAPER_DEFAULT_WINDOW,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"

# Trial sizing: long enough for ~15 windows post-warmup, short enough
# that a full search stays in seconds of wall-clock per probe.
SEARCH_DURATION_S = 120.0
MEASURE_DURATION_S = 200.0
GENERATOR = GeneratorConfig(instances=2)
CRITERIA = SustainabilityCriteria()

AGG_ENGINES = ("storm", "spark", "flink")
JOIN_ENGINES = ("spark", "flink")
WORKER_SWEEP = (2, 4, 8)

# Probe ceilings ("a very high generation rate", Section IV-B).
AGG_HIGH_RATE = 1.6e6
JOIN_HIGH_RATE = 1.6e6


def emit(name: str, text: str) -> None:
    """Print a bench result and persist it under benchmarks/out/."""
    print(f"\n{text}\n")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def agg_spec(engine: str, workers: int, **overrides) -> ExperimentSpec:
    defaults = dict(
        engine=engine,
        query=WindowedAggregationQuery(window=PAPER_DEFAULT_WINDOW),
        workers=workers,
        duration_s=SEARCH_DURATION_S,
        generator=GENERATOR,
        seed=17,
        monitor_resources=False,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def join_spec(engine: str, workers: int, **overrides) -> ExperimentSpec:
    defaults = dict(
        engine=engine,
        query=WindowedJoinQuery(window=PAPER_DEFAULT_WINDOW),
        workers=workers,
        duration_s=SEARCH_DURATION_S,
        generator=GENERATOR,
        seed=17,
        monitor_resources=False,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


# Scheduler parallelism for the session searches; rates are
# byte-identical for any value (see repro.sched), so CI can crank this
# up to the runner's core count without perturbing the tables.
JOBS = int(os.environ.get("REPRO_JOBS", "1"))


def search_rates(
    spec_builder, engines, high_rate
) -> Dict[Tuple[str, int], float]:
    cells = [
        ((engine, workers), spec_builder(engine, workers))
        for engine in engines
        for workers in WORKER_SWEEP
    ]
    return sweep_sustainable_rates(
        cells,
        high_rate=high_rate,
        rel_tol=0.05,
        criteria=CRITERIA,
        max_trials=9,
        workers=JOBS,
    )


@pytest.fixture(scope="session")
def agg_sustainable_rates() -> Dict[Tuple[str, int], float]:
    """Table I: sustainable aggregation throughput per (engine, size)."""
    return search_rates(agg_spec, AGG_ENGINES, AGG_HIGH_RATE)


@pytest.fixture(scope="session")
def join_sustainable_rates() -> Dict[Tuple[str, int], float]:
    """Table III: sustainable join throughput per (engine, size)."""
    return search_rates(join_spec, JOIN_ENGINES, JOIN_HIGH_RATE)
