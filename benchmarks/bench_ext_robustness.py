"""Extension benches: node failures and out-of-order streams.

These are NOT artifacts of the ICDE'18 paper; they exercise the two
extensions the repository adds on top of it:

- **Node-failure robustness** reproduces the Related Work claim the
  paper cites (Lopez et al.): "Spark is more robust to node failures but
  it performs up to an order of magnitude worse than Storm and Flink."
- **Out-of-order streams** explore the future-work item of Section VI-D
  ("out-of-order and late arriving data management"): the
  completeness/latency trade of allowed lateness.
"""

import pytest

from benchmarks.conftest import agg_spec, emit
from repro.core.experiment import run_experiment
from repro.core.generator import GeneratorConfig
from repro.engines.flink import FlinkConfig
from repro.sim.nodefail import NodeFailureSpec
from repro.workloads.disorder import DisorderSpec

FAIL_AT_S = 80.0
DURATION_S = 240.0


@pytest.mark.benchmark(group="extensions")
def test_ext_node_failure_robustness(benchmark):
    """Kill one of four workers mid-run; compare recovery."""

    def measure():
        results = {}
        for engine, rate in (("storm", 0.4e6), ("spark", 0.4e6), ("flink", 0.4e6)):
            spec = agg_spec(engine, 4, profile=rate, duration_s=DURATION_S)
            from dataclasses import replace

            spec = replace(
                spec, node_failure=NodeFailureSpec(fail_at_s=FAIL_AT_S)
            )
            results[engine] = run_experiment(spec)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    def excess(result):
        series = result.collector.binned_series(bin_s=5.0, start_time=0.0)
        before = series.window(30.0, FAIL_AT_S - 2).mean()
        after = series.window(FAIL_AT_S + 5, DURATION_S).mean()
        return after - before

    lines = [
        "Extension: one of four workers fails at t=80 s (0.4 M/s offered)",
        f"{'engine':<8} {'latency excess':>15} {'state lost':>12} "
        f"{'throughput kept':>16}",
    ]
    excesses = {}
    for engine, result in results.items():
        excesses[engine] = excess(result)
        kept = result.mean_ingest_rate / 0.4e6
        lines.append(
            f"{engine:<8} {excesses[engine]:>13.2f} s "
            f"{result.diagnostics['state_lost_weight']:>12.0f} "
            f"{kept:>15.1%}"
        )
    lines.append(
        "-> Lopez et al. (cited in Related Work): Spark is the most robust "
        "to node failures."
    )
    emit("ext_node_failures", "\n".join(lines))

    assert excesses["spark"] < excesses["storm"]
    assert results["storm"].diagnostics["state_lost_weight"] > 0
    assert results["spark"].diagnostics["state_lost_weight"] == 0
    assert results["flink"].diagnostics["state_lost_weight"] == 0


@pytest.mark.benchmark(group="extensions")
def test_ext_late_events_tradeoff(benchmark):
    """Allowed lateness trades event-time latency for completeness."""

    def measure():
        out = {}
        for lateness in (0.0, 1.0, 2.5):
            from dataclasses import replace

            spec = agg_spec(
                "flink",
                2,
                profile=0.3e6,
                duration_s=160.0,
                engine_config=FlinkConfig(allowed_lateness_s=lateness),
            )
            spec = replace(
                spec,
                generator=GeneratorConfig(
                    instances=2,
                    disorder=DisorderSpec(fraction=0.15, max_delay_s=2.0),
                ),
            )
            out[lateness] = run_experiment(spec)
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "Extension: 15% of events up to 2 s late (Flink 2-node, 0.3 M/s)",
        f"{'allowed lateness':>17} {'dropped weight':>15} {'avg latency':>12}",
    ]
    for lateness, result in sorted(out.items()):
        lines.append(
            f"{lateness:>15.1f} s "
            f"{result.diagnostics['late_dropped_weight']:>15.0f} "
            f"{result.event_latency.mean:>10.2f} s"
        )
    lines.append(
        "-> holding windows open recovers stragglers at a latency cost "
        "(paper Section VI-D future work)."
    )
    emit("ext_late_events", "\n".join(lines))

    drops = {k: v.diagnostics["late_dropped_weight"] for k, v in out.items()}
    lat = {k: v.event_latency.mean for k, v in out.items()}
    assert drops[0.0] > drops[1.0] > drops[2.5]
    assert lat[0.0] < lat[1.0] < lat[2.5]
