"""Microbenchmark: the driver-side measurement hot path.

ShuffleBench (arXiv:2403.04570) and SProBench (arXiv:2504.02364) both
make the point that a streaming benchmark harness must itself sustain
multi-million-events/s measurement rates or it becomes the bottleneck
it is trying to measure.  This bench pins down the speedup of the
columnar chunked :class:`LatencyCollector` + NumPy-backed
:class:`TimeSeries` over the seed implementation (parallel Python lists
re-materialised per query; per-bin boolean-mask binning; one sort per
quantile), and verifies the two produce IDENTICAL numbers.

Run directly (not collected by the tier-1 pytest run)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py                # full, 1M samples
    PYTHONPATH=src python benchmarks/bench_hotpath.py --samples 50000  # CI smoke

Exit status is non-zero if the numeric-identity check fails, or if
``--assert-speedup X`` is given and the measured speedup is below X.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Tuple

import numpy as np

from repro.core.latency import EVENT_TIME, PROCESSING_TIME, LatencyCollector
from repro.core.metrics import StatSummary, TimeSeries, weighted_summary
from repro.core.records import OutputRecord

IDENTITY_TOL = 1e-9


# ---------------------------------------------------------------------------
# Seed (pre-optimisation) implementations, kept verbatim as the baseline.
# ---------------------------------------------------------------------------


def seed_weighted_quantile(values, weights, q):
    """Seed: one full sort per quantile."""
    if values.size == 0:
        return float("nan")
    order = np.argsort(values, kind="stable")
    values = values[order]
    weights = weights[order]
    cum = np.cumsum(weights)
    target = q * cum[-1]
    idx = int(np.searchsorted(cum, target, side="left"))
    idx = min(idx, values.size - 1)
    return float(values[idx])


def seed_weighted_summary(values, weights) -> StatSummary:
    """Seed: three independent sorts for (p90, p95, p99)."""
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0:
        return StatSummary.empty()
    wts = np.asarray(weights, dtype=np.float64)
    total = float(wts.sum())
    if total <= 0:
        return StatSummary.empty()
    mean = float(np.average(vals, weights=wts))
    var = float(np.average((vals - mean) ** 2, weights=wts))
    return StatSummary(
        count=int(vals.size),
        weight=total,
        mean=mean,
        minimum=float(vals.min()),
        maximum=float(vals.max()),
        p90=seed_weighted_quantile(vals, wts, 0.90),
        p95=seed_weighted_quantile(vals, wts, 0.95),
        p99=seed_weighted_quantile(vals, wts, 0.99),
        std=float(np.sqrt(var)),
    )


def seed_binned(times, values, bin_s) -> Tuple[List[float], List[float]]:
    """Seed TimeSeries.binned: one boolean mask pass per bin."""
    out_t: List[float] = []
    out_v: List[float] = []
    if not len(times):
        return out_t, out_v
    t = np.asarray(times)
    v = np.asarray(values)
    t0 = t[0]
    bins = np.floor((t - t0) / bin_s).astype(int)
    for b in np.unique(bins):
        mask = bins == b
        out_t.append(t0 + float(b) * bin_s)
        out_v.append(float(np.mean(v[mask])))
    return out_t, out_v


class SeedLatencyCollector:
    """The seed collector: four parallel Python lists, re-materialised
    into fresh NumPy arrays on EVERY summary()/series() call."""

    def __init__(self) -> None:
        self._emit_times: List[float] = []
        self._event_lat: List[float] = []
        self._proc_lat: List[float] = []
        self._weights: List[float] = []

    def collect(self, outputs: List[OutputRecord]) -> None:
        for out in outputs:
            self._emit_times.append(out.emit_time)
            self._event_lat.append(out.event_time_latency)
            self._proc_lat.append(out.processing_time_latency)
            self._weights.append(out.weight)

    def __len__(self) -> int:
        return len(self._emit_times)

    def _arrays(self, kind: str, start_time: float):
        lat = self._event_lat if kind == EVENT_TIME else self._proc_lat
        times = np.asarray(self._emit_times)
        values = np.asarray(lat)
        weights = np.asarray(self._weights)
        mask = times >= start_time
        return times[mask], values[mask], weights[mask]

    def summary(self, kind: str = EVENT_TIME, start_time: float = 0.0):
        _, values, weights = self._arrays(kind, start_time)
        return seed_weighted_summary(values, weights)

    def binned_series(self, kind=EVENT_TIME, bin_s=5.0, start_time=0.0):
        times, values, _ = self._arrays(kind, start_time)
        return seed_binned(times, values, bin_s)

    def trend_slope(self, kind=EVENT_TIME, start_time=0.0, bin_s=5.0):
        t, v = self.binned_series(kind, bin_s=bin_s, start_time=start_time)
        ts = TimeSeries(times=t, values=v)
        return ts.slope_per_s()


# ---------------------------------------------------------------------------
# Fixture and harness
# ---------------------------------------------------------------------------


def make_outputs(n: int, seed: int = 7, batch: int = 256) -> List[List[OutputRecord]]:
    """Synthesise ``n`` sink emissions in collect()-sized bundles.

    Emit times advance monotonically (as in a real trial); latencies are
    lognormal; 10% of the cohorts are heavy (join-style weights).
    """
    rng = np.random.default_rng(seed)
    emit = np.cumsum(rng.exponential(1e-3, n)) + 1.0
    event_lat = rng.lognormal(mean=-1.0, sigma=0.6, size=n)
    proc_lat = event_lat * rng.uniform(0.3, 0.9, size=n)
    weights = np.ones(n)
    heavy = rng.random(n) < 0.1
    weights[heavy] = rng.integers(2, 64, size=int(heavy.sum())).astype(float)
    bundles: List[List[OutputRecord]] = []
    for lo in range(0, n, batch):
        hi = min(lo + batch, n)
        bundles.append(
            [
                OutputRecord(
                    key=0,
                    value=0.0,
                    event_time=emit[i] - event_lat[i],
                    processing_time=emit[i] - proc_lat[i],
                    emit_time=emit[i],
                    weight=weights[i],
                )
                for i in range(lo, hi)
            ]
        )
    return bundles


def metrology_pass(collector, warmup: float, bin_s: float):
    """What TrialResult assembly + the sustainability assessment run:
    both summaries, the binned series, and the latency trend."""
    ev = collector.summary(EVENT_TIME, warmup)
    pr = collector.summary(PROCESSING_TIME, warmup)
    binned = collector.binned_series(EVENT_TIME, bin_s=bin_s, start_time=warmup)
    slope = collector.trend_slope(EVENT_TIME, start_time=warmup, bin_s=bin_s)
    return ev, pr, binned, slope


def timed(fn, repeats: int) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def summaries_identical(a: StatSummary, b: StatSummary, tol: float) -> List[str]:
    problems = []
    for field in ("count", "weight", "mean", "minimum", "maximum",
                  "p90", "p95", "p99", "std"):
        x, y = getattr(a, field), getattr(b, field)
        if x != y and abs(x - y) > tol:
            problems.append(f"{field}: seed={x!r} new={y!r}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=1_000_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--bin-s", type=float, default=5.0)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=0.0,
        help="fail unless the cold metrology pass is at least this much faster",
    )
    args = parser.parse_args(argv)
    if args.samples < 1 or args.repeats < 1:
        parser.error("--samples and --repeats must be >= 1")

    n = args.samples
    print(f"== measurement hot path @ {n:,} samples ==")
    bundles = make_outputs(n)
    warmup = 0.25 * float(bundles[-1][-1].emit_time)

    seed_collector = SeedLatencyCollector()
    new_collector = LatencyCollector()

    ingest_seed, _ = timed(
        lambda: [seed_collector.collect(b) for b in bundles], 1
    )
    ingest_new, _ = timed(
        lambda: [new_collector.collect(b) for b in bundles], 1
    )
    print(f"collect()           seed {ingest_seed * 1e3:9.1f} ms   "
          f"new {ingest_new * 1e3:9.1f} ms   "
          f"({n / ingest_new / 1e6:.1f} M samples/s)")

    # Cold pass: first query after ingest (includes consolidation).
    cold_seed, seed_out = timed(
        lambda: metrology_pass(seed_collector, warmup, args.bin_s), 1
    )
    cold_new, new_out = timed(
        lambda: metrology_pass(new_collector, warmup, args.bin_s), 1
    )
    # Warm pass: repeated queries (figure generation, search re-reads).
    warm_seed, _ = timed(
        lambda: metrology_pass(seed_collector, warmup, args.bin_s),
        args.repeats,
    )
    warm_new, _ = timed(
        lambda: metrology_pass(new_collector, warmup, args.bin_s),
        args.repeats,
    )

    cold_speedup = cold_seed / cold_new if cold_new > 0 else float("inf")
    warm_speedup = warm_seed / warm_new if warm_new > 0 else float("inf")
    print(f"metrology pass cold seed {cold_seed * 1e3:9.1f} ms   "
          f"new {cold_new * 1e3:9.1f} ms   speedup {cold_speedup:6.1f}x")
    print(f"metrology pass warm seed {warm_seed * 1e3:9.1f} ms   "
          f"new {warm_new * 1e3:9.1f} ms   speedup {warm_speedup:6.1f}x")

    # Standalone TimeSeries.binned: mask loop vs np.bincount.
    times = np.concatenate([[o.emit_time for o in b] for b in bundles])
    values = np.concatenate(
        [[o.emit_time - o.event_time for o in b] for b in bundles]
    )
    ts = TimeSeries.from_arrays(times, values)
    binned_seed_t, binned_seed_out = timed(
        lambda: seed_binned(times, values, args.bin_s), args.repeats
    )
    binned_new_t, binned_new_out = timed(
        lambda: ts.binned(args.bin_s), args.repeats
    )
    binned_speedup = (
        binned_seed_t / binned_new_t if binned_new_t > 0 else float("inf")
    )
    print(f"TimeSeries.binned   seed {binned_seed_t * 1e3:9.1f} ms   "
          f"new {binned_new_t * 1e3:9.1f} ms   speedup {binned_speedup:6.1f}x")

    # ---- numeric identity ------------------------------------------------
    failures: List[str] = []
    for kind, s_seed, s_new in (
        (EVENT_TIME, seed_out[0], new_out[0]),
        (PROCESSING_TIME, seed_out[1], new_out[1]),
    ):
        for problem in summaries_identical(s_seed, s_new, IDENTITY_TOL):
            failures.append(f"summary[{kind}] {problem}")
    ref_t, ref_v = binned_seed_out
    if not np.allclose(binned_new_out.times, ref_t, atol=IDENTITY_TOL, rtol=0):
        failures.append("binned times differ")
    if not np.allclose(binned_new_out.values, ref_v, atol=IDENTITY_TOL, rtol=0):
        failures.append("binned values differ")
    # The weight-aware binned series must agree with a direct weighted
    # reference (this is the Figures 6-8 bugfix, intentionally != seed).
    weights = np.concatenate([[o.weight for o in b] for b in bundles])
    cut = times >= warmup
    wt, wv = weighted_reference_binned(
        times[cut], values[cut], weights[cut], args.bin_s
    )
    got = new_out[2]
    if not np.allclose(got.times, wt, atol=IDENTITY_TOL, rtol=0):
        failures.append("weighted binned times differ from reference")
    if not np.allclose(got.values, wv, atol=IDENTITY_TOL, rtol=0):
        failures.append("weighted binned values differ from reference")
    # Cross-check summary against the library weighted_summary too.
    lib = weighted_summary(values[cut], weights[cut])
    for problem in summaries_identical(lib, new_out[0], IDENTITY_TOL):
        failures.append(f"summary-vs-library {problem}")

    if failures:
        print("IDENTITY CHECK FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"numeric identity: OK (tolerance {IDENTITY_TOL:g})")

    if args.assert_speedup > 0 and cold_speedup < args.assert_speedup:
        print(
            f"SPEEDUP CHECK FAILED: cold {cold_speedup:.1f}x "
            f"< required {args.assert_speedup:.1f}x"
        )
        return 1
    return 0


def weighted_reference_binned(times, values, weights, bin_s):
    """Naive per-bin weighted mean, the ground truth for the bugfix."""
    t0 = times[0]
    bins = np.floor((times - t0) / bin_s).astype(int)
    out_t, out_v = [], []
    for b in np.unique(bins):
        mask = bins == b
        out_t.append(t0 + float(b) * bin_s)
        out_v.append(
            float(np.sum(values[mask] * weights[mask]) / np.sum(weights[mask]))
        )
    return out_t, out_v


if __name__ == "__main__":
    sys.exit(main())
