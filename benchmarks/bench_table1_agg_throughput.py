"""Table I: sustainable throughput for windowed aggregations.

Regenerates the paper's Table I by running the sustainable-throughput
search (Definition 5) for Storm, Spark, and Flink on 2-, 4-, and 8-node
deployments with the (8s, 4s) aggregation query.

Expected shape (paper): Flink flat at ~1.2 M/s (network-bound at every
size); Storm ~8% above Spark; both scale sublinearly.
"""

import pytest

from benchmarks.conftest import WORKER_SWEEP, emit
from repro.analysis.paper_values import PAPER_TABLE1_AGG_THROUGHPUT
from repro.analysis.stats import within_factor
from repro.core.report import throughput_table


@pytest.mark.benchmark(group="table1")
def test_table1_agg_sustainable_throughput(benchmark, agg_sustainable_rates):
    rates = benchmark.pedantic(
        lambda: agg_sustainable_rates, rounds=1, iterations=1
    )
    table = throughput_table(
        "Table I: sustainable throughput, windowed aggregation (8s, 4s)",
        measured=rates,
        paper=PAPER_TABLE1_AGG_THROUGHPUT,
        workers=WORKER_SWEEP,
    )
    emit("table1_agg_throughput", table)

    # Shape assertions (factor-2 tolerance on absolutes; strict ordering).
    for key, paper_rate in PAPER_TABLE1_AGG_THROUGHPUT.items():
        assert within_factor(rates[key], paper_rate, 2.0), (key, rates[key])
    # Flink is network-bound and flat across sizes.
    flink = [rates[("flink", w)] for w in WORKER_SWEEP]
    assert max(flink) / min(flink) < 1.15
    # Flink dominates both other engines everywhere.
    for w in WORKER_SWEEP:
        assert rates[("flink", w)] > rates[("storm", w)]
        assert rates[("flink", w)] > rates[("spark", w)]
    # Storm modestly above Spark (paper: ~8%).
    for w in WORKER_SWEEP:
        assert rates[("storm", w)] > 0.95 * rates[("spark", w)]
    # Storm and Spark scale with cluster size.
    for engine in ("storm", "spark"):
        assert (
            rates[(engine, 2)] < rates[(engine, 4)] < rates[(engine, 8)]
        )
