"""Benchmark: the work-stealing trial scheduler on a chaos soak.

The chaos grid (engines x recovery policies x seeded rounds) is
embarrassingly parallel: every cell's seed is derived before fan-out,
so :class:`repro.sched.TrialScheduler` can spread cells over worker
processes without touching a single reported byte.  This bench runs the
same soak serially and with ``--workers N``, verifies the two
scorecards are BYTE-IDENTICAL, and reports the wall-clock speedup.

Run directly (not collected by the tier-1 pytest run)::

    PYTHONPATH=src python benchmarks/bench_scheduler.py              # 4 workers
    PYTHONPATH=src python benchmarks/bench_scheduler.py --workers 8

Exit status is non-zero if the byte-identity check fails, or if
``--assert-speedup X`` is given and the measured speedup is below X.
The speedup gate only applies when the machine has at least
``--workers`` CPU cores (a 1-core runner cannot exhibit parallel
speedup; byte-identity is still enforced there).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.recovery.chaos import ChaosConfig, run_chaos


def soak_config(args: argparse.Namespace) -> ChaosConfig:
    return ChaosConfig(
        seed=args.seed,
        rounds=args.rounds,
        engines=tuple(args.engines),
        duration_s=args.duration,
        rate=args.rate,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument(
        "--engines", nargs="+", default=["flink", "storm", "spark"]
    )
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--rate", type=float, default=30_000.0)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=0.0,
        help=(
            "fail unless the parallel soak is at least this much faster "
            "(skipped, with a note, on machines with fewer cores than "
            "--workers)"
        ),
    )
    args = parser.parse_args(argv)
    if args.workers < 2:
        parser.error("--workers must be >= 2 (comparing against serial)")

    config = soak_config(args)
    cells = len(config.engines) * len(config.policies) * args.rounds
    print(
        f"== trial scheduler @ chaos soak: {len(config.engines)} engines "
        f"x {args.rounds} rounds, {args.workers} workers =="
    )

    t0 = time.perf_counter()
    serial = run_chaos(config)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_chaos(config, workers=args.workers)
    parallel_s = time.perf_counter() - t0

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"serial   (1 worker)           {serial_s:8.2f} s")
    print(f"parallel ({args.workers} workers)          {parallel_s:8.2f} s   "
          f"speedup {speedup:5.2f}x")

    serial_bytes = json.dumps(serial.to_dict(), sort_keys=True)
    parallel_bytes = json.dumps(parallel.to_dict(), sort_keys=True)
    if serial_bytes != parallel_bytes:
        print("BYTE-IDENTITY CHECK FAILED: parallel scorecard differs")
        return 1
    print(f"byte identity: OK ({cells} trial digests compared)")

    if args.assert_speedup > 0:
        cores = os.cpu_count() or 1
        if cores < args.workers:
            print(
                f"speedup gate skipped: {cores} cores < "
                f"{args.workers} workers (byte identity still enforced)"
            )
        elif speedup < args.assert_speedup:
            print(
                f"SPEEDUP CHECK FAILED: {speedup:.2f}x "
                f"< required {args.assert_speedup:.2f}x"
            )
            return 1
        else:
            print(
                f"speedup gate: OK ({speedup:.2f}x >= "
                f"{args.assert_speedup:.2f}x)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
