"""Fault-injection benchmark: recovery behaviour of the three engines.

Reproduces the paper's Related Work fault claim (Lopez et al., cited in
Section VI): Spark's lineage recompute is "more robust to node
failures" than Storm's tuple replay, while Flink's checkpoint restore
sits between them on outage length but, like Spark, loses nothing.
One of four workers is killed mid-run and the driver-side recovery
metrology (``repro.faults.metrics``) reports, per engine:

- recovery time (event-time latency back inside the pre-fault band),
- catch-up throughput while draining the backlog,
- lost / duplicated weight under each engine's delivery guarantee,
- post-recovery p99 vs the pre-fault baseline.

The run fails (non-zero exit) if the delivery guarantees do not hold:
Flink and Spark (exactly-once) must lose nothing; Storm (at-most-once,
acking off) must show ``lost_weight > 0`` at the fixed seed.

Run directly (not collected by the tier-1 pytest run)::

    PYTHONPATH=src python benchmarks/bench_faults_recovery.py          # 3 engines
    PYTHONPATH=src python benchmarks/bench_faults_recovery.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.faults import FaultSchedule, NodeCrash
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

CRASH_AT_S = 90.0
QUICK_CRASH_AT_S = 50.0


def crash_spec(engine: str, *, rate: float, duration: float,
               crash_at: float, seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=4,
        profile=rate,
        duration_s=duration,
        seed=seed,
        generator=GeneratorConfig(instances=2),
        faults=FaultSchedule((NodeCrash(at_s=crash_at),)),
        monitor_resources=False,
    )


def fmt_s(value: float) -> str:
    return "never" if math.isnan(value) else f"{value:.1f}s"


def fmt_weight(value: float) -> str:
    return "0" if value == 0.0 else f"{value:,.0f}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: flink only, short trial",
    )
    parser.add_argument("--rate", type=float, default=0.35e6)
    parser.add_argument("--duration", type=float, default=240.0)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)
    if args.rate <= 0 or args.duration <= 0:
        parser.error("--rate and --duration must be positive")

    # Storm's tuple-replay rebalance (~19 s pause, ~70 s to re-enter the
    # band) does not fit a short smoke trial; flink recovers in ~11 s.
    engines = ("flink",) if args.quick else ("storm", "spark", "flink")
    duration = min(args.duration, 120.0) if args.quick else args.duration
    crash_at = QUICK_CRASH_AT_S if args.quick else CRASH_AT_S

    print(
        f"== crash of 1/4 workers at t={crash_at:.0f}s, "
        f"{args.rate / 1e6:.2f} M events/s, {duration:.0f}s, "
        f"seed {args.seed} =="
    )
    print(
        f"{'engine':<7} {'semantics':<20} {'pause':>7} {'recovery':>9} "
        f"{'catch-up':>10} {'lost':>12} {'dup':>12} "
        f"{'p99 pre':>8} {'p99 post':>9}"
    )

    failures = []
    for engine in engines:
        result = run_experiment(
            crash_spec(
                engine,
                rate=args.rate,
                duration=duration,
                crash_at=crash_at,
                seed=args.seed,
            )
        )
        if result.failed:
            failures.append(f"{engine}: trial failed ({result.failure})")
            continue
        (m,) = result.recovery
        semantics = {
            "storm": "tuple replay",
            "spark": "lineage recompute",
            "flink": "checkpoint restore",
        }[engine]
        print(
            f"{engine:<7} {semantics:<20} {m.injected_pause_s:>6.1f}s "
            f"{fmt_s(m.recovery_time_s):>9} "
            f"{m.catchup_throughput / 1e6:>8.2f}M/s "
            f"{fmt_weight(m.lost_weight):>12} "
            f"{fmt_weight(m.duplicated_weight):>12} "
            f"{m.baseline_p99_s:>7.2f}s {fmt_s(m.post_p99_s):>9}"
        )
        if engine in ("flink", "spark"):
            if m.lost_weight != 0.0 or m.duplicated_weight != 0.0:
                failures.append(
                    f"{engine}: exactly-once violated "
                    f"(lost={m.lost_weight}, dup={m.duplicated_weight})"
                )
        if engine == "storm":
            if m.lost_weight <= 0.0:
                failures.append(
                    "storm: at-most-once crash should lose weight, lost none"
                )
            if m.duplicated_weight != 0.0:
                failures.append(
                    f"storm: at-most-once duplicated {m.duplicated_weight}"
                )
        if not m.recovered:
            failures.append(f"{engine}: never re-entered the baseline band")

    if failures:
        print("GUARANTEE CHECK FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("delivery guarantees: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
