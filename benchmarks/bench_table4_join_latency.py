"""Table IV: latency statistics for windowed joins.

Spark and Flink at their sustainable join rates and at 90% of them.

Expected shape (paper): Flink beats Spark on every statistic; both
engines' latencies *decrease* with cluster size; Spark's averages sit
above its batch interval because queueing time is part of event-time
latency ("the additional latency is due to tuples' waiting in the
queue").
"""

import pytest

from benchmarks.conftest import MEASURE_DURATION_S, WORKER_SWEEP, emit, join_spec
from repro.analysis.paper_values import PAPER_TABLE4_JOIN_LATENCY
from repro.core.experiment import run_experiment
from repro.core.report import latency_table


@pytest.mark.benchmark(group="table4")
def test_table4_join_latency(benchmark, join_sustainable_rates):
    def measure():
        stats = {}
        for (engine, workers), rate in join_sustainable_rates.items():
            for label, factor in ((engine, 1.0), (f"{engine}(90%)", 0.9)):
                result = run_experiment(
                    join_spec(
                        engine,
                        workers,
                        profile=rate * factor,
                        duration_s=MEASURE_DURATION_S,
                    )
                )
                assert not result.failed, (label, workers, result.failure)
                stats[(label, workers)] = result.event_latency
        return stats

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = latency_table(
        "Table IV: event-time latency, windowed join (max and 90% load)",
        measured=stats,
        paper=PAPER_TABLE4_JOIN_LATENCY,
        workers=WORKER_SWEEP,
    )
    emit("table4_join_latency", table)

    for w in WORKER_SWEEP:
        # Flink outperforms Spark in all parameters (paper).
        assert stats[("flink", w)].mean < stats[("spark", w)].mean
        assert stats[("flink", w)].p99 < stats[("spark", w)].p99
        # 90% load at or below max load on average (within noise).
        for engine in ("spark", "flink"):
            assert (
                stats[(f"{engine}(90%)", w)].mean
                <= stats[(engine, w)].mean * 1.15
            )
    # Latency decreases with cluster size for both engines.
    assert stats[("flink", 8)].mean < stats[("flink", 2)].mean
    assert stats[("spark", 8)].mean < stats[("spark", 2)].mean * 1.2
    # Spark's average exceeds its 4 s batch interval (queueing included).
    assert stats[("spark", 2)].mean > 4.0
